//! The unified public error hierarchy of the suite.
//!
//! Before the service boundary existed, each layer invented its own error
//! carrier — [`EvalFailure`] in the evaluator, ad-hoc `String`s in the
//! binaries. A networked evaluation path adds transport, codec and session
//! failures on top, and they all have to cross the wire with a stable
//! serialized shape. [`Error`] is that one hierarchy: evaluation failures
//! embed unchanged (retryability preserved), and every other layer gets a
//! typed variant with a human-readable message.

use serde::{Deserialize, Serialize};

use crate::measurement::EvalFailure;

/// Any failure the tuning stack can report, from a restricted
/// configuration to a dead TCP connection.
///
/// The serde representation is part of the wire contract
/// (`bat/wire/v1`): externally tagged with `snake_case` tags, e.g.
/// `{"eval": "Restricted"}` or `{"transport": "connection reset"}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Error {
    /// A measurement-level failure (restricted/launch/transient/timeout/
    /// crash) — the pre-existing [`EvalFailure`] taxonomy, embedded
    /// unchanged.
    Eval(EvalFailure),
    /// The transport below the codec failed: connection refused, reset,
    /// short read, frame over the size limit.
    Transport(String),
    /// A frame arrived but does not parse as the expected `bat/wire/v1`
    /// message: bad JSON, unknown fields, version or tag mismatch.
    Wire(String),
    /// A session-level protocol violation: unknown session id, a request
    /// for a closed session, or backpressure (too many in-flight batches).
    Session(String),
    /// An invalid specification or configuration: unknown benchmark or
    /// tuner, bad builder inputs, malformed CLI arguments.
    Spec(String),
    /// A local file I/O failure (spec/artifact reads and writes).
    Io(String),
}

impl Error {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Delegates to [`EvalFailure::is_retryable`] for evaluation failures;
    /// every other variant reports a deterministic condition (bad spec,
    /// protocol violation) or one whose retry policy belongs to a higher
    /// layer (reconnect logic), so they all answer `false`.
    pub fn is_retryable(&self) -> bool {
        match self {
            Error::Eval(e) => e.is_retryable(),
            _ => false,
        }
    }

    /// A [`Error::Transport`] from any I/O error.
    pub fn transport(e: impl std::fmt::Display) -> Error {
        Error::Transport(e.to_string())
    }

    /// A [`Error::Wire`] from any codec/parse error.
    pub fn wire(e: impl std::fmt::Display) -> Error {
        Error::Wire(e.to_string())
    }

    /// A [`Error::Session`] with a message.
    pub fn session(e: impl std::fmt::Display) -> Error {
        Error::Session(e.to_string())
    }

    /// A [`Error::Spec`] with a message.
    pub fn spec(e: impl std::fmt::Display) -> Error {
        Error::Spec(e.to_string())
    }

    /// A [`Error::Io`] from any file I/O error.
    pub fn io(e: impl std::fmt::Display) -> Error {
        Error::Io(e.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Eval(e) => write!(f, "evaluation failed: {e}"),
            Error::Transport(m) => write!(f, "transport error: {m}"),
            Error::Wire(m) => write!(f, "wire protocol error: {m}"),
            Error::Session(m) => write!(f, "session error: {m}"),
            Error::Spec(m) => write!(f, "invalid spec: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<EvalFailure> for Error {
    fn from(e: EvalFailure) -> Self {
        Error::Eval(e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::Wire(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_delegates_to_eval_failure() {
        assert!(Error::from(EvalFailure::Timeout).is_retryable());
        assert!(Error::Eval(EvalFailure::Transient("flake".into())).is_retryable());
        assert!(!Error::Eval(EvalFailure::Restricted).is_retryable());
        assert!(!Error::Transport("reset".into()).is_retryable());
        assert!(!Error::Session("busy".into()).is_retryable());
    }

    #[test]
    fn wire_representation_is_stable() {
        let e = Error::Transport("connection reset".into());
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(json, "{\"transport\":\"connection reset\"}");
        let back: Error = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);

        let e = Error::Eval(EvalFailure::Timeout);
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.starts_with("{\"eval\":"), "{json}");
        let back: Error = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn display_names_the_layer() {
        assert!(Error::Wire("bad tag".into()).to_string().contains("wire"));
        assert!(Error::spec("no such tuner").to_string().contains("spec"));
        assert!(Error::io("denied").to_string().contains("io"));
    }
}
