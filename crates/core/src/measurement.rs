//! Measurements and evaluation failures.

use serde::{Deserialize, Serialize};

/// Why a configuration produced no runtime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalFailure {
    /// The configuration violates the benchmark's restriction set (it is
    /// outside the "Constrained" space of Table VIII).
    Restricted,
    /// The configuration passed restrictions but cannot run on the target
    /// architecture — compile/launch failure (outside the "Valid" space).
    Launch(String),
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalFailure::Restricted => f.write_str("restricted configuration"),
            EvalFailure::Launch(msg) => write!(f, "launch failure: {msg}"),
        }
    }
}

/// One measured configuration: repeated runs plus the aggregate objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Aggregated objective in milliseconds (median of `samples` by
    /// default).
    pub time_ms: f64,
    /// Individual run times in milliseconds.
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Aggregate samples into a measurement using the median (robust to the
    /// occasional slow run, as real tuners do).
    pub fn from_samples(mut samples: Vec<f64>) -> Measurement {
        assert!(!samples.is_empty(), "measurement needs at least one run");
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN runtime"));
        let mid = sorted.len() / 2;
        let time_ms = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        };
        samples.shrink_to_fit();
        Measurement { time_ms, samples }
    }

    /// Minimum over samples.
    pub fn best_sample(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let m = Measurement::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.time_ms, 2.0);
    }

    #[test]
    fn median_even() {
        let m = Measurement::from_samples(vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.time_ms, 2.5);
    }

    #[test]
    fn best_sample_is_min() {
        let m = Measurement::from_samples(vec![4.0, 1.5, 2.0]);
        assert_eq!(m.best_sample(), 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_samples_panic() {
        let _ = Measurement::from_samples(vec![]);
    }

    #[test]
    fn failure_display() {
        assert_eq!(
            EvalFailure::Restricted.to_string(),
            "restricted configuration"
        );
        assert!(EvalFailure::Launch("x".into()).to_string().contains('x'));
    }
}
