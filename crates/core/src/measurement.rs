//! Measurements and evaluation failures.

use serde::{Deserialize, Serialize};

/// Why a configuration produced no runtime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalFailure {
    /// The configuration violates the benchmark's restriction set (it is
    /// outside the "Constrained" space of Table VIII).
    Restricted,
    /// The configuration passed restrictions but cannot run on the target
    /// architecture — compile/launch failure (outside the "Valid" space).
    Launch(String),
    /// The measurement attempt failed transiently (driver flake, remote
    /// hiccup). Retrying the same configuration may well succeed.
    Transient(String),
    /// The measurement attempt hung past the protocol deadline and was
    /// killed. Like [`EvalFailure::Transient`], worth retrying.
    Timeout,
    /// The configuration crashed the kernel/device. Not retryable as such —
    /// crashers are sticky — and repeat offenders get quarantined.
    Crash(String),
}

impl EvalFailure {
    /// Whether a retry of the same configuration could plausibly succeed.
    ///
    /// Retryable failures are *never* memoized by the evaluator (caching a
    /// flake would make it permanent); deterministic failures are cached
    /// forever, exactly as before the fault model existed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, EvalFailure::Transient(_) | EvalFailure::Timeout)
    }
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalFailure::Restricted => f.write_str("restricted configuration"),
            EvalFailure::Launch(msg) => write!(f, "launch failure: {msg}"),
            EvalFailure::Transient(msg) => write!(f, "transient failure: {msg}"),
            EvalFailure::Timeout => f.write_str("measurement timed out"),
            EvalFailure::Crash(msg) => write!(f, "crashed configuration: {msg}"),
        }
    }
}

/// How many run samples a [`Samples`] holds without touching the heap.
/// Protocol run counts are tiny (5 by default, 16 is exotic), so the common
/// case fits inline exactly; anything larger is rare enough to pay for a
/// spill. Kept at the default run count deliberately: every extra inline
/// slot grows `Measurement` (it holds two of these) and the batched
/// evaluation path moves measurements through block buffers, where a fatter
/// struct costs real throughput at large batch sizes.
const INLINE_SAMPLES: usize = 5;

/// An inline-first sample vector: up to [`INLINE_SAMPLES`] `f64`s live in
/// the struct itself, longer runs spill to a heap `Vec`.
///
/// `Measurement` used to own its samples as a `Vec<f64>`, which put one
/// heap allocation (plus one per clone — and the memo cache clones every
/// published measurement) on the evaluator's per-eval hot path. With the
/// default 5-run protocol this type never allocates: construction,
/// cloning and memo publication are all plain copies.
///
/// Serializes exactly like `Vec<f64>` (a JSON array), so artifacts are
/// byte-identical to the `Vec`-backed representation.
#[derive(Clone)]
pub struct Samples {
    len: usize,
    inline: [f64; INLINE_SAMPLES],
    /// Holds *all* samples once `len > INLINE_SAMPLES`; empty otherwise.
    spill: Vec<f64>,
}

impl Samples {
    /// An empty sample vector.
    pub const fn new() -> Samples {
        Samples {
            len: 0,
            inline: [0.0; INLINE_SAMPLES],
            spill: Vec::new(),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, v: f64) {
        if self.len < INLINE_SAMPLES {
            self.inline[self.len] = v;
        } else {
            if self.len == INLINE_SAMPLES {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// The samples as a slice.
    pub fn as_slice(&self) -> &[f64] {
        if self.len <= INLINE_SAMPLES {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples are held (the `skip_serializing_if` predicate
    /// of unmeasured energy).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The samples as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }
}

impl Default for Samples {
    fn default() -> Samples {
        Samples::new()
    }
}

impl std::ops::Deref for Samples {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Samples {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for Samples {
    fn eq(&self, other: &Samples) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<f64>> for Samples {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Samples> for Vec<f64> {
    fn eq(&self, other: &Samples) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<f64>> for Samples {
    fn from(v: Vec<f64>) -> Samples {
        if v.len() <= INLINE_SAMPLES {
            let mut s = Samples::new();
            for x in v {
                s.push(x);
            }
            s
        } else {
            Samples {
                len: v.len(),
                inline: [0.0; INLINE_SAMPLES],
                spill: v,
            }
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Samples {
        let mut s = Samples::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl<'a> IntoIterator for &'a Samples {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Serialize for Samples {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for Samples {
    fn from_value(v: &serde::Value) -> Result<Samples, serde::DeError> {
        match v {
            serde::Value::Array(items) => items
                .iter()
                .map(f64::from_value)
                .collect::<Result<Samples, _>>(),
            _ => Err(serde::DeError::expected("array", "Samples")),
        }
    }
}

/// One measured configuration: repeated runs plus the aggregate objective.
///
/// Energy is the suite's optional second objective: it is populated only
/// when the evaluator measures it (see `Evaluator::with_energy`), so
/// time-only runs — and their serialized records — are unchanged by its
/// existence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Aggregated objective in milliseconds (median of `samples` by
    /// default).
    pub time_ms: f64,
    /// Individual run times in milliseconds.
    pub samples: Samples,
    /// Aggregated energy in millijoules (median of `energy_samples`), when
    /// energy was measured.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub energy_mj: Option<f64>,
    /// Individual run energies in millijoules (empty when not measured).
    #[serde(default, skip_serializing_if = "Samples::is_empty")]
    pub energy_samples: Samples,
}

/// Median of a non-empty sample vector (the suite's robust aggregate).
///
/// Protocol run counts are tiny (5 by default), so small inputs sort on
/// the stack via insertion sort — same ascending order, same median, no
/// allocation. `from_samples` sits on the evaluator's hot path.
fn median(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n <= 16 {
        let mut buf = [0.0f64; 16];
        for (i, &s) in samples.iter().enumerate() {
            assert!(!s.is_nan(), "NaN sample");
            let mut j = i;
            while j > 0 && buf[j - 1] > s {
                buf[j] = buf[j - 1];
                j -= 1;
            }
            buf[j] = s;
        }
        return mid_of(&buf[..n]);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    mid_of(&sorted)
}

/// Median of an already-sorted non-empty slice.
fn mid_of(sorted: &[f64]) -> f64 {
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

impl Measurement {
    /// Aggregate samples into a measurement using the median (robust to the
    /// occasional slow run, as real tuners do). Accepts any sample source —
    /// the evaluator streams protocol runs straight in, so no intermediate
    /// `Vec` ever exists for protocols that fit inline.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Measurement {
        let samples: Samples = samples.into_iter().collect();
        assert!(!samples.is_empty(), "measurement needs at least one run");
        let time_ms = median(&samples);
        Measurement {
            time_ms,
            samples,
            energy_mj: None,
            energy_samples: Samples::new(),
        }
    }

    /// Attach energy samples (median-aggregated, like the time samples).
    pub fn with_energy_samples(
        mut self,
        energy_samples: impl IntoIterator<Item = f64>,
    ) -> Measurement {
        let energy_samples: Samples = energy_samples.into_iter().collect();
        assert!(
            !energy_samples.is_empty(),
            "energy measurement needs at least one run"
        );
        self.energy_mj = Some(median(&energy_samples));
        self.energy_samples = energy_samples;
        self
    }

    /// Minimum over samples.
    pub fn best_sample(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Energy–delay product in mJ·ms, when energy was measured.
    pub fn edp(&self) -> Option<f64> {
        self.energy_mj.map(|e| e * self.time_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let m = Measurement::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.time_ms, 2.0);
    }

    #[test]
    fn median_even() {
        let m = Measurement::from_samples(vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.time_ms, 2.5);
    }

    #[test]
    fn best_sample_is_min() {
        let m = Measurement::from_samples(vec![4.0, 1.5, 2.0]);
        assert_eq!(m.best_sample(), 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_samples_panic() {
        let _ = Measurement::from_samples(Vec::<f64>::new());
    }

    #[test]
    fn energy_samples_aggregate_by_median() {
        let m = Measurement::from_samples(vec![2.0]).with_energy_samples(vec![9.0, 3.0, 6.0]);
        assert_eq!(m.energy_mj, Some(6.0));
        assert_eq!(m.edp(), Some(12.0));
    }

    #[test]
    fn time_only_measurement_serializes_without_energy_fields() {
        let m = Measurement::from_samples(vec![1.0, 2.0]);
        assert_eq!(m.energy_mj, None);
        assert!(m.edp().is_none());
        let json = serde_json::to_string_pretty(&m).unwrap();
        assert!(!json.contains("energy"));
        let back: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn energy_measurement_round_trips() {
        let m = Measurement::from_samples(vec![1.0]).with_energy_samples(vec![5.0, 4.0]);
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.energy_mj, Some(4.5));
    }

    #[test]
    fn samples_spill_past_the_inline_capacity() {
        let long: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s: Samples = long.iter().copied().collect();
        assert_eq!(s.len(), 20);
        assert_eq!(s, long);
        assert_eq!(s.to_vec(), long);
        let via_from = Samples::from(long.clone());
        assert_eq!(via_from, s);
        // Clone preserves the spilled contents.
        assert_eq!(s.clone(), s);
        // Spilled samples serialize like any array.
        let m = Measurement::from_samples(long.clone());
        let json = serde_json::to_string(&m).unwrap();
        let back: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.samples, long);
    }

    #[test]
    fn samples_serialize_exactly_like_vec() {
        let v = vec![1.5, 2.25, 3.0];
        let s = Samples::from(v.clone());
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&v).unwrap()
        );
        let back = Samples::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn failure_display() {
        assert_eq!(
            EvalFailure::Restricted.to_string(),
            "restricted configuration"
        );
        assert!(EvalFailure::Launch("x".into()).to_string().contains('x'));
        assert!(EvalFailure::Transient("y".into()).to_string().contains('y'));
        assert!(EvalFailure::Timeout.to_string().contains("timed out"));
        assert!(EvalFailure::Crash("z".into()).to_string().contains('z'));
    }

    #[test]
    fn retryability_split() {
        assert!(EvalFailure::Transient("flake".into()).is_retryable());
        assert!(EvalFailure::Timeout.is_retryable());
        assert!(!EvalFailure::Restricted.is_retryable());
        assert!(!EvalFailure::Launch("bad".into()).is_retryable());
        assert!(!EvalFailure::Crash("boom".into()).is_retryable());
    }
}
