//! Timed smoke of the lock-free cache read path — the cache perf gate.
//!
//! Builds a synthetic `bat/cache/v1` store, indexes it with
//! [`bat_cache::CacheIndex`] and measures single-core lookups/s over a
//! deterministic hit/miss stream, plus the reader-scaling ratio at a few
//! thread counts (lock-free reads should scale ~linearly). `--write FILE`
//! records the baseline (`BENCH_cache_lookup.json`); CI runs
//! `cache_lookup_smoke --check BENCH_cache_lookup.json` and fails on a
//! regression of more than 30%.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use bat_cache::{CacheIndex, CacheStore};

/// Cells in the synthetic store (a realistic shipped-cache size: every
/// benchmark × architecture × a few dozen scenarios).
const CELLS: usize = 1024;

/// Lookups per timed pass.
const LOOKUPS: u64 = 1 << 21;

/// Reader counts for the scaling sweep.
const SCALING_READERS: [usize; 3] = [1, 2, 4];

/// Tolerated slowdown vs the recorded baseline before the gate fails.
/// Generous on purpose: CI machines vary, and the gate exists to catch
/// wholesale regressions (a lock sneaking into the read path), not
/// scheduler jitter.
const MAX_REGRESSION: f64 = 0.30;

/// The synthetic store: `CELLS` distinct (benchmark, arch, scenario) keys,
/// each with one observed configuration. Deterministic by construction.
fn build_store() -> CacheStore {
    let mut store = CacheStore::new();
    for i in 0..CELLS {
        let bench = format!("bench-{}", i % 16);
        let arch = format!("arch-{}", (i / 16) % 8);
        let scenario = format!("objective=time;budget={};runs=3", 100 + i / 128);
        let config = BTreeMap::from([("block_size_x".to_string(), 32 + (i as i64 % 8) * 32)]);
        store.observe(
            &bench,
            &arch,
            &scenario,
            &config,
            1.0 + i as f64 * 0.001,
            None,
        );
    }
    store
}

/// The key stream: deterministic scattered indices (no RNG — the gate must
/// not depend on rand's stream shape), half resolving to present cells and
/// half to misses.
fn key_stream() -> Vec<(String, String, String)> {
    (0..4096u64)
        .map(|j| {
            let i = ((j * 2654435761) % (2 * CELLS as u64)) as usize;
            if i < CELLS {
                (
                    format!("bench-{}", i % 16),
                    format!("arch-{}", (i / 16) % 8),
                    format!("objective=time;budget={};runs=3", 100 + i / 128),
                )
            } else {
                // Never inserted: exercises the miss path.
                (
                    format!("bench-{}", i % 16),
                    format!("arch-miss-{}", i % 8),
                    "objective=time;budget=999;runs=3".to_string(),
                )
            }
        })
        .collect()
}

/// Single-core lookups/s: warm-up pass, then best of 3 timed passes.
fn measure(index: &CacheIndex, keys: &[(String, String, String)]) -> f64 {
    let pass = |n: u64| {
        let mut hits = 0u64;
        for j in 0..n {
            let (b, a, s) = &keys[(j % keys.len() as u64) as usize];
            hits += u64::from(index.lookup(b, a, s).is_some());
        }
        hits
    };
    std::hint::black_box(pass(LOOKUPS / 8));
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(pass(LOOKUPS));
        best = best.min(start.elapsed().as_secs_f64());
    }
    LOOKUPS as f64 / best
}

/// Aggregate lookups/s with `readers` concurrent threads hammering the
/// same shared index — the lock-free-scaling claim, measured.
fn measure_readers(
    index: &Arc<CacheIndex>,
    keys: &Arc<Vec<(String, String, String)>>,
) -> Vec<(usize, f64)> {
    SCALING_READERS
        .iter()
        .map(|&readers| {
            let start = Instant::now();
            let handles: Vec<_> = (0..readers)
                .map(|r| {
                    let index = Arc::clone(index);
                    let keys = Arc::clone(keys);
                    std::thread::spawn(move || {
                        let mut hits = 0u64;
                        for j in 0..LOOKUPS {
                            let (b, a, s) =
                                &keys[((j + r as u64 * 17) % keys.len() as u64) as usize];
                            hits += u64::from(index.lookup(b, a, s).is_some());
                        }
                        std::hint::black_box(hits)
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            let total = (readers as u64 * LOOKUPS) as f64;
            (readers, total / start.elapsed().as_secs_f64())
        })
        .collect()
}

/// Extract `"lookups_per_sec": RATE` from the baseline JSON (hand-rolled:
/// the gate must not add deps).
fn baseline_rate(json: &str) -> Option<f64> {
    let key = "\"lookups_per_sec\"";
    let pos = json.find(key)?;
    let rest = &json[pos + key.len()..];
    let colon = rest.find(':')?;
    let tail = &rest[colon + 1..];
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let store = build_store();
    let index = Arc::new(CacheIndex::build(&store));
    let keys = Arc::new(key_stream());
    let mut rate = measure(&index, &keys);
    println!(
        "single-core: {:.2} M lookups/s over {} cells",
        rate / 1e6,
        index.len()
    );

    if let Some(path) = opt("--write") {
        let scaling = measure_readers(&index, &keys);
        for (readers, agg) in &scaling {
            println!("readers {readers}: {:.2} M lookups/s aggregate", agg / 1e6);
        }
        let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
        let mut body = String::from("{\n  \"schema\": \"bat/bench-cache-lookup/v1\",\n");
        body.push_str(&format!("  \"cells\": {CELLS},\n"));
        body.push_str(&format!("  \"host_threads\": {host_threads},\n"));
        body.push_str(&format!("  \"lookups_per_sec\": {rate:.0},\n"));
        body.push_str("  \"reader_scaling\": {\n");
        for (i, (readers, agg)) in scaling.iter().enumerate() {
            let sep = if i + 1 == scaling.len() { "" } else { "," };
            body.push_str(&format!("    \"readers_{readers}\": {agg:.0}{sep}\n"));
        }
        body.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cache_lookup_smoke: cannot write {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
        println!("baseline written to {path}");
    }

    if let Some(path) = opt("--check") {
        let json = match std::fs::read_to_string(&path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cache_lookup_smoke: cannot read {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let Some(want) = baseline_rate(&json) else {
            eprintln!("cache_lookup_smoke: no lookups_per_sec in {path}");
            return std::process::ExitCode::FAILURE;
        };
        // Shared hosts drift through slow phases best-of-3 cannot ride
        // out; a real lost fast path is slow in every phase. Re-measure up
        // to twice before failing.
        let floor = want * (1.0 - MAX_REGRESSION);
        for retry in 0..2 {
            if rate >= floor {
                break;
            }
            eprintln!(
                "gate: apparent regression, re-measuring (retry {})",
                retry + 1
            );
            rate = rate.max(measure(&index, &keys));
        }
        let verdict = if rate < floor { "REGRESSED" } else { "ok" };
        println!(
            "gate: {:.2} M lookups/s vs baseline {:.2} M (floor {:.2} M) — {verdict}",
            rate / 1e6,
            want / 1e6,
            floor / 1e6,
        );
        if rate < floor {
            eprintln!("cache_lookup_smoke: lookup rate regressed more than 30% from {path}");
            return std::process::ExitCode::FAILURE;
        }
    }
    std::process::ExitCode::SUCCESS
}
