//! Timed smoke of `Evaluator::evaluate_batch` throughput — the perf gate.
//!
//! Measures evals/s at a few batch sizes and (optionally) compares them
//! against a recorded baseline JSON (`BENCH_batch_eval.json`), failing on
//! a regression of more than 30%. CI runs
//! `batch_eval_smoke --check BENCH_batch_eval.json`; `--write FILE`
//! records a new baseline after an intentional perf change.

use std::time::Instant;

use bat_core::{Evaluator, Protocol, TuningProblem};
use bat_gpusim::GpuArch;

/// Batch sizes the gate times (matching the committed baseline).
const BATCHES: [usize; 4] = [8, 64, 256, 1024];

/// Tolerated slowdown vs the recorded baseline before the gate fails.
/// Generous on purpose: CI machines vary, and the gate exists to catch
/// wholesale regressions (a lost fast path), not scheduler jitter.
const MAX_REGRESSION: f64 = 0.30;

/// A deterministic scattered index stream (no RNG: the gate must not
/// depend on rand's stream shape).
fn index_stream(n: u64, card: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 2654435761) % card).collect()
}

/// Measured throughput per batch size, in evals/s.
fn measure() -> Vec<(usize, f64)> {
    let problem = bat_kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
    let card = problem.space().cardinality();
    let n = 1u64 << 16;
    let indices = index_stream(n, card);
    BATCHES
        .iter()
        .map(|&batch| {
            // Warm up the pool and the caches of everything but the memo
            // (the gate times the uncached measurement path).
            let eval = Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
            for chunk in indices.chunks(batch).take(8) {
                std::hint::black_box(eval.evaluate_batch(chunk).len());
            }
            // Best of 3 passes: robust against one-off scheduler stalls.
            let mut best = f64::MAX;
            for _ in 0..3 {
                let eval = Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
                let start = Instant::now();
                for chunk in indices.chunks(batch) {
                    std::hint::black_box(eval.evaluate_batch(chunk).len());
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            (batch, n as f64 / best)
        })
        .collect()
}

/// Batch size at which the thread-scaling sweep runs.
const SCALING_BATCH: usize = 256;

/// Thread counts the scaling sweep records.
const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Throughput of the scaling batch size at fixed worker-pool sizes (via
/// the per-thread override, so one process sweeps all counts), plus the
/// measured worker utilization from the pool's busy-time counter:
/// busy-µs accrued across the timed passes over `threads ×` their wall
/// time. On a single-core host the sweep documents that extra workers are
/// quality-neutral and roughly throughput-neutral; on a multi-core host it
/// records the actual speedup and how busy the workers really were.
fn measure_scaling() -> Vec<(usize, f64, f64)> {
    let problem = bat_kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
    let card = problem.space().cardinality();
    let n = 1u64 << 16;
    let indices = index_stream(n, card);
    SCALING_THREADS
        .iter()
        .map(|&threads| {
            rayon::with_thread_limit(threads, || {
                let eval = Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
                for chunk in indices.chunks(SCALING_BATCH).take(8) {
                    std::hint::black_box(eval.evaluate_batch(chunk).len());
                }
                let mut best = f64::MAX;
                let busy0 = rayon::pool_busy_us();
                let mut timed_wall = 0.0f64;
                for _ in 0..3 {
                    let eval =
                        Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
                    let start = Instant::now();
                    for chunk in indices.chunks(SCALING_BATCH) {
                        std::hint::black_box(eval.evaluate_batch(chunk).len());
                    }
                    let wall = start.elapsed().as_secs_f64();
                    timed_wall += wall;
                    best = best.min(wall);
                }
                let busy_us = (rayon::pool_busy_us() - busy0) as f64;
                let capacity_us = threads as f64 * timed_wall * 1e6;
                // At one thread the evaluator short-circuits before the
                // pool, so no busy time accrues there — but the lone
                // participant is the caller, busy for the full wall by
                // construction.
                let utilization = if threads == 1 {
                    1.0
                } else if capacity_us > 0.0 {
                    (busy_us / capacity_us).min(1.0)
                } else {
                    0.0
                };
                (threads, n as f64 / best, utilization)
            })
        })
        .collect()
}

/// Extract `"batch_N": RATE` entries from the baseline JSON's
/// `evals_per_sec` object (hand-rolled: the gate must not add deps).
fn baseline_rates(json: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &batch in &BATCHES {
        let key = format!("\"batch_{batch}\"");
        if let Some(pos) = json.find(&key) {
            let rest = &json[pos + key.len()..];
            if let Some(colon) = rest.find(':') {
                let tail = &rest[colon + 1..];
                let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
                if let Ok(rate) = tail[..end].trim().parse::<f64>() {
                    out.push((batch, rate));
                }
            }
        }
    }
    out
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let measured = measure();
    for (batch, rate) in &measured {
        println!("batch {batch:5}: {:.2} M evals/s", rate / 1e6);
    }

    if let Some(path) = opt("--write") {
        let scaling = measure_scaling();
        for (threads, rate, util) in &scaling {
            println!(
                "threads {threads} @ batch {SCALING_BATCH}: {:.2} M evals/s ({:.0}% utilized)",
                rate / 1e6,
                util * 100.0
            );
        }
        let threads = std::env::var("BAT_THREADS").unwrap_or_else(|_| "auto".into());
        let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
        let mut body = String::from("{\n  \"schema\": \"bat/bench-batch-eval/v1\",\n");
        body.push_str("  \"kernel\": \"gemm\",\n  \"arch\": \"RTX 3090\",\n");
        body.push_str(&format!("  \"threads\": \"{threads}\",\n"));
        body.push_str(&format!("  \"host_threads\": {host_threads},\n"));
        body.push_str("  \"evals_per_sec\": {\n");
        for (i, (batch, rate)) in measured.iter().enumerate() {
            let sep = if i + 1 == measured.len() { "" } else { "," };
            body.push_str(&format!("    \"batch_{batch}\": {rate:.0}{sep}\n"));
        }
        body.push_str("  },\n");
        body.push_str(&format!(
            "  \"thread_scaling\": {{\n    \"batch\": {SCALING_BATCH},\n"
        ));
        for (threads, rate, _) in scaling.iter() {
            body.push_str(&format!("    \"threads_{threads}\": {rate:.0},\n"));
        }
        for (i, (threads, _, util)) in scaling.iter().enumerate() {
            let sep = if i + 1 == scaling.len() { "" } else { "," };
            body.push_str(&format!(
                "    \"utilization_threads_{threads}\": {util:.3}{sep}\n"
            ));
        }
        body.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("batch_eval_smoke: cannot write {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
        println!("baseline written to {path}");
    }

    if let Some(path) = opt("--check") {
        let json = match std::fs::read_to_string(&path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("batch_eval_smoke: cannot read {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let baseline = baseline_rates(&json);
        if baseline.is_empty() {
            eprintln!("batch_eval_smoke: no batch_N rates found in {path}");
            return std::process::ExitCode::FAILURE;
        }
        // Shared and frequency-scaled hosts drift through multi-second
        // slow phases that best-of-3 inside one pass cannot ride out; a
        // real lost fast path is slow in *every* phase. So on apparent
        // regression, re-measure up to twice and judge each batch size by
        // its best rate across passes.
        let mut best = measured.clone();
        for retry in 0..2 {
            let worst_ratio = baseline
                .iter()
                .filter_map(|(batch, want)| {
                    let (_, got) = best.iter().find(|(b, _)| b == batch)?;
                    Some(got / want)
                })
                .fold(f64::INFINITY, f64::min);
            if worst_ratio >= 1.0 - MAX_REGRESSION {
                break;
            }
            eprintln!(
                "gate: apparent regression, re-measuring (retry {})",
                retry + 1
            );
            for (batch, rate) in measure() {
                if let Some(slot) = best.iter_mut().find(|(b, _)| *b == batch) {
                    slot.1 = slot.1.max(rate);
                }
            }
        }
        let mut failed = false;
        for (batch, want) in baseline {
            let Some((_, got)) = best.iter().find(|(b, _)| *b == batch) else {
                continue;
            };
            let floor = want * (1.0 - MAX_REGRESSION);
            let verdict = if *got < floor { "REGRESSED" } else { "ok" };
            println!(
                "gate batch {batch:5}: {:.2} M evals/s vs baseline {:.2} M (floor {:.2} M) — {verdict}",
                got / 1e6,
                want / 1e6,
                floor / 1e6,
            );
            failed |= *got < floor;
        }
        if failed {
            eprintln!("batch_eval_smoke: throughput regressed more than 30% from {path}");
            return std::process::ExitCode::FAILURE;
        }
    }
    std::process::ExitCode::SUCCESS
}
