//! Shared fixtures for the BAT-rs benchmark harness.
//!
//! The `benches/` targets of this crate regenerate the paper's evaluation:
//!
//! * `table_spaces` — Tables I–VII construction and Table VIII counting,
//! * `fig_experiments` — one group per figure (1, 2, 3, 4, 5, 6),
//! * `substrate` — micro-benchmarks of the simulator and space machinery,
//! * `ablations` — the design-choice ablations called out in DESIGN.md.

use bat_analysis::{sampled_valid, Landscape};
use bat_core::TuningProblem;
use bat_gpusim::GpuArch;
use bat_kernels::GpuBenchmark;

/// The benchmarks the paper searches exhaustively.
pub const EXHAUSTIVE: [&str; 4] = ["pnpoly", "nbody", "gemm", "convolution"];

/// Bind `bench` to `arch` (panics on bad name; bench fixtures only).
pub fn problem(bench: &str, arch: GpuArch) -> GpuBenchmark {
    bat_kernels::benchmark(bench, arch).expect("benchmark exists")
}

/// A paper-protocol landscape with a bench-friendly sample budget.
pub fn landscape(bench: &str, arch: GpuArch, samples: usize) -> Landscape {
    let p = problem(bench, arch);
    if EXHAUSTIVE.contains(&bench) {
        Landscape::exhaustive(&p)
    } else {
        sampled_valid(&p, samples, 0, samples * 10_000).expect("sampling succeeds")
    }
}

/// Times (with failures) of a landscape, for convergence simulation.
pub fn times_of(l: &Landscape) -> Vec<Option<f64>> {
    l.samples.iter().map(|s| s.time_ms).collect()
}

/// A mid-space valid configuration of a benchmark.
pub fn some_valid_config(bench: &str) -> Vec<i64> {
    let p = problem(bench, GpuArch::rtx_3090());
    let space = p.space();
    let mut scratch = vec![0i64; space.num_params()];
    for idx in space.cardinality() / 2..space.cardinality() {
        space.decode_into(idx, &mut scratch);
        if space.is_valid(&scratch) {
            return scratch;
        }
    }
    panic!("no valid config found for {bench}");
}
