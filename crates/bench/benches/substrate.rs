//! Micro-benchmarks of the substrates: occupancy calculation, the timing
//! model, restriction evaluation, index decoding, neighbour generation, and
//! the tuners' end-to-end throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bat_bench::{problem, some_valid_config};
use bat_core::{Evaluator, Protocol, TuningProblem};
use bat_gpusim::{execute, occupancy, BlockResources, GpuArch};
use bat_kernels::KernelSpec;
use bat_space::Neighborhood;
use bat_tuners::{RandomSearch, Tuner};

fn occupancy_calculator(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let res = BlockResources {
        threads: 256,
        regs_per_thread: 64,
        smem_bytes: 24_576,
        launch_bounds_blocks: 0,
    };
    c.bench_function("substrate_occupancy", |b| {
        b.iter(|| black_box(occupancy(&arch, black_box(&res))))
    });
}

fn timing_model(c: &mut Criterion) {
    let arch = GpuArch::rtx_2080_ti();
    let spec = bat_kernels::GemmKernel::default();
    let cfg = some_valid_config("gemm");
    let model = spec.model(&cfg);
    c.bench_function("substrate_timing_model", |b| {
        b.iter(|| black_box(execute(&arch, black_box(&model))))
    });
}

fn kernel_model_derivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_kernel_model");
    for name in ["gemm", "hotspot", "dedisp"] {
        let spec = bat_kernels::kernel_by_name(name).unwrap();
        let cfg = some_valid_config(name);
        g.bench_function(name, |b| b.iter(|| black_box(spec.model(&cfg))));
    }
    g.finish();
}

fn restriction_evaluation(c: &mut Criterion) {
    let space = bat_kernels::GemmKernel::default().build_space();
    let cfg = some_valid_config("gemm");
    c.bench_function("substrate_restriction_eval_gemm_6_rules", |b| {
        b.iter(|| black_box(space.is_valid(black_box(&cfg))))
    });
}

fn index_decode_throughput(c: &mut Criterion) {
    let space = bat_kernels::DedispKernel::default().build_space();
    let mut g = c.benchmark_group("substrate_index_decode");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("dedisp_10k_decodes", |b| {
        let mut scratch = vec![0i64; space.num_params()];
        b.iter(|| {
            for idx in (0..10_000u64).map(|i| i * 12_347 % space.cardinality()) {
                space.decode_into(idx, &mut scratch);
                black_box(&scratch);
            }
        })
    });
    g.finish();
}

fn neighbor_generation(c: &mut Criterion) {
    let space = bat_kernels::HotspotKernel::default().build_space();
    c.bench_function("substrate_neighbors_hotspot", |b| {
        b.iter(|| {
            black_box(Neighborhood::HammingAny.neighbor_indices(&space, black_box(1_234_567)))
        })
    });
}

fn evaluation_throughput(c: &mut Criterion) {
    let p = problem("convolution", GpuArch::rtx_titan());
    let mut g = c.benchmark_group("substrate_evaluation");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("convolution_1k_pure_evals", |b| {
        let space = p.space();
        let configs: Vec<Vec<i64>> = (0..1_000u64)
            .map(|i| space.config_at(i * 17 % space.cardinality()))
            .collect();
        b.iter(|| {
            for cfg in &configs {
                black_box(p.evaluate_pure(cfg).ok());
            }
        })
    });
    g.finish();
}

fn tuner_throughput(c: &mut Criterion) {
    let p = problem("nbody", GpuArch::rtx_3060());
    c.bench_function("substrate_random_search_200_evals", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&p, Protocol::default()).with_budget(200);
            black_box(RandomSearch.tune(&eval, 3))
        })
    });
}

criterion_group!(
    benches,
    occupancy_calculator,
    timing_model,
    kernel_model_derivation,
    restriction_evaluation,
    index_decode_throughput,
    neighbor_generation,
    evaluation_throughput,
    tuner_throughput
);
criterion_main!(benches);
