//! Ablation benches for the design choices called out in DESIGN.md §7.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bat_analysis::{pagerank, FitnessFlowGraph, Landscape, PageRankParams};
use bat_bench::problem;
use bat_core::{Evaluator, Protocol};
use bat_gpusim::GpuArch;
use bat_kernels::KernelSpec;
use bat_ml::{Gbdt, GbdtParams, TreeParams};
use bat_space::Neighborhood;
use bat_tuners::{RandomSearch, Tuner};

/// Evaluator memoization: with the cache, revisited configurations are
/// free; without it, every visit re-measures.
fn ablation_eval_cache(c: &mut Criterion) {
    let p = problem("gemm", GpuArch::rtx_3090());
    let mut g = c.benchmark_group("ablation_eval_cache");
    g.bench_function("cache_on", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&p, Protocol::default()).with_budget(400);
            black_box(RandomSearch.tune(&eval, 1))
        })
    });
    g.bench_function("cache_off", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&p, Protocol::default())
                .with_budget(400)
                .without_cache();
            black_box(RandomSearch.tune(&eval, 1))
        })
    });
    g.finish();
}

/// Constraint counting: factoring the restriction graph vs brute force over
/// the full cartesian product (GEMM: 82 944 configs, 6 restrictions).
fn ablation_constraint_counting(c: &mut Criterion) {
    let space = bat_kernels::GemmKernel::default().build_space();
    let mut g = c.benchmark_group("ablation_constraint_counting");
    g.sample_size(10);
    g.bench_function("factored", |b| {
        b.iter(|| black_box(space.count_valid_factored()))
    });
    g.bench_function("brute_force", |b| b.iter(|| black_box(space.count_valid())));
    g.finish();
}

/// GBDT depth: deeper trees fit interactions with fewer stages but cost
/// more per stage.
fn ablation_gbdt_depth(c: &mut Criterion) {
    let p = problem("nbody", GpuArch::rtx_titan());
    let l = Landscape::exhaustive(&p);
    let data = bat_analysis::landscape_dataset(bat_core::TuningProblem::space(&p), &l).unwrap();
    let mut g = c.benchmark_group("ablation_gbdt_depth");
    g.sample_size(10);
    for depth in [3usize, 6, 9] {
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| {
                black_box(Gbdt::fit(
                    &data,
                    &GbdtParams {
                        n_trees: 60,
                        learning_rate: 0.15,
                        tree: TreeParams {
                            max_depth: depth,
                            min_samples_leaf: 3,
                            ..TreeParams::default()
                        },
                        subsample: 1.0,
                        seed: 1,
                    },
                ))
            })
        });
    }
    g.finish();
}

/// PageRank tolerance: convergence threshold vs iteration cost on the
/// pnpoly FFG.
fn ablation_pagerank_tolerance(c: &mut Criterion) {
    let p = problem("pnpoly", GpuArch::rtx_2080_ti());
    let l = Landscape::exhaustive(&p);
    let ffg = FitnessFlowGraph::build(
        bat_core::TuningProblem::space(&p),
        &l,
        Neighborhood::HammingAny,
    );
    let mut g = c.benchmark_group("ablation_pagerank_tolerance");
    for tol in [1e-6f64, 1e-10] {
        g.bench_function(format!("tol_{tol:e}"), |b| {
            b.iter(|| {
                black_box(pagerank(
                    &ffg,
                    &PageRankParams {
                        damping: 0.85,
                        tolerance: tol,
                        max_iters: 200,
                    },
                ))
            })
        });
    }
    g.finish();
}

/// Neighbourhood structure: FFG built with Hamming-any vs adjacent-step
/// neighbourhoods (the adjacent FFG is far sparser).
fn ablation_neighborhood(c: &mut Criterion) {
    let p = problem("nbody", GpuArch::rtx_3090());
    let l = Landscape::exhaustive(&p);
    let space = bat_core::TuningProblem::space(&p);
    let mut g = c.benchmark_group("ablation_ffg_neighborhood");
    g.sample_size(10);
    g.bench_function("hamming_any", |b| {
        b.iter(|| black_box(FitnessFlowGraph::build(space, &l, Neighborhood::HammingAny)))
    });
    g.bench_function("adjacent", |b| {
        b.iter(|| black_box(FitnessFlowGraph::build(space, &l, Neighborhood::Adjacent)))
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_eval_cache,
    ablation_constraint_counting,
    ablation_gbdt_depth,
    ablation_pagerank_tolerance,
    ablation_neighborhood
);
criterion_main!(benches);
