//! ML-substrate throughput: histogram-binned GBDT training against the
//! sort-based exact baseline, batch prediction, and end-to-end landscape
//! evaluation (the two halves of the suite's analysis hot path).
//!
//! The exact-splitter baselines re-sort every feature at every node, so
//! they dominate this target's wall time; filter with `hist`/`exact` to
//! run one side only.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bat_analysis::{sampled_valid, Landscape};
use bat_core::TuningProblem;
use bat_gpusim::GpuArch;
use bat_kernels::benchmark;
use bat_ml::{Dataset, Gbdt, GbdtParams, RegressionTree, TreeParams};

/// A landscape-shaped regression set: `n` rows over six discrete tuning
/// parameters (≤ 37 distinct values each) with interacting effects.
fn landscape_dataset(n: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                f64::from((i * 7 % 13) as u32),
                f64::from((i * 5 % 7) as u32),
                f64::from((i * 3 % 4) as u32),
                f64::from((i * 11 % 32) as u32),
                f64::from((i * 17 % 37) as u32),
                f64::from((i * 23 % 6) as u32),
            ]
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| 3.0 * r[0] + r[1] * r[1] - 2.0 * r[0] * r[2] + 10.0 * r[3] / (1.0 + r[4]))
        .collect();
    Dataset::new(&rows, y, (0..6).map(|i| format!("p{i}")).collect())
}

/// GBDT fit throughput on the acceptance-criterion shape: 10 000 rows.
fn gbdt_fit(c: &mut Criterion) {
    let data = landscape_dataset(10_000);
    let params = GbdtParams {
        n_trees: 50,
        ..GbdtParams::default()
    };
    let mut g = c.benchmark_group("gbdt_fit_10k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        (data.n_rows() * params.n_trees) as u64,
    ));
    g.bench_function("hist", |b| b.iter(|| Gbdt::fit(black_box(&data), &params)));
    g.bench_function("exact", |b| {
        b.iter(|| Gbdt::fit_exact(black_box(&data), &params))
    });
    g.finish();
}

/// Single-tree fit throughput (the forest/SMAC inner loop).
fn tree_fit(c: &mut Criterion) {
    let data = landscape_dataset(10_000);
    let rows: Vec<usize> = (0..data.n_rows()).collect();
    let params = TreeParams {
        max_depth: 10,
        min_samples_leaf: 2,
        ..TreeParams::default()
    };
    let mut g = c.benchmark_group("tree_fit_10k");
    g.throughput(Throughput::Elements(data.n_rows() as u64));
    g.bench_function("hist", |b| {
        b.iter(|| RegressionTree::fit(black_box(&data), data.targets(), &rows, &params))
    });
    g.bench_function("exact", |b| {
        b.iter(|| RegressionTree::fit_exact(black_box(&data), data.targets(), &rows, &params))
    });
    g.finish();
}

/// Batch prediction throughput of a fitted ensemble.
fn predict_batch(c: &mut Criterion) {
    let data = landscape_dataset(10_000);
    let model = Gbdt::fit(
        &data,
        &GbdtParams {
            n_trees: 50,
            ..GbdtParams::default()
        },
    );
    let mut g = c.benchmark_group("gbdt_predict_10k");
    g.throughput(Throughput::Elements(data.n_rows() as u64));
    g.bench_function("batch", |b| {
        b.iter(|| black_box(model.predict_dataset(&data).len()))
    });
    g.finish();
}

/// Landscape evaluation throughput: the chunked streaming evaluator over
/// real kernel models (exhaustive on the small spaces, the 10 000-sample
/// valid protocol on Hotspot).
fn landscape_eval(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let mut g = c.benchmark_group("landscape_eval");
    g.sample_size(10);
    for name in ["pnpoly", "nbody", "gemm"] {
        let problem = benchmark(name, arch.clone()).unwrap();
        g.throughput(Throughput::Elements(problem.space().cardinality()));
        g.bench_function(format!("{name}/exhaustive"), |b| {
            b.iter(|| black_box(Landscape::exhaustive(&problem).samples.len()))
        });
    }
    let hotspot = benchmark("hotspot", arch).unwrap();
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("hotspot/sampled_valid_10k", |b| {
        b.iter(|| {
            black_box(
                sampled_valid(&hotspot, 10_000, 1, 40_000_000)
                    .expect("hotspot sampling succeeds")
                    .samples
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, gbdt_fit, tree_fit, predict_batch, landscape_eval);
criterion_main!(benches);
