//! Micro-benchmarks of the multi-objective subsystem: Pareto-archive
//! insert throughput, the power model's overhead on top of the timing
//! model, and end-to-end NSGA-II tuning throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bat_bench::some_valid_config;
use bat_core::{Evaluator, Protocol};
use bat_gpusim::{execute, execute_with_energy, GpuArch};
use bat_kernels::KernelSpec;
use bat_moo::{front_of_run, Nsga2, ParetoArchive, ParetoPoint};
use bat_tuners::Tuner;

/// A deterministic stream of scattered objective points (no RNG: benches
/// must not depend on rand's stream shape).
fn point_stream(n: u64) -> Vec<ParetoPoint> {
    (0..n)
        .map(|i| ParetoPoint {
            index: i,
            time_ms: 1.0 + ((i * 2654435761) % 10_007) as f64 / 100.0,
            energy_mj: 1.0 + ((i * 40503) % 9_973) as f64 / 100.0,
        })
        .collect()
}

fn archive_insert_throughput(c: &mut Criterion) {
    let points = point_stream(10_000);
    let mut g = c.benchmark_group("moo_archive");
    g.throughput(Throughput::Elements(points.len() as u64));
    for cap in [16usize, 64] {
        g.bench_function(format!("insert_10k_cap{cap}"), |b| {
            b.iter(|| {
                let mut a = ParetoArchive::new(cap);
                for p in &points {
                    a.insert(black_box(*p));
                }
                black_box(a.len())
            })
        });
    }
    g.finish();
}

fn power_model_overhead(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let spec = bat_kernels::GemmKernel::default();
    let cfg = some_valid_config("gemm");
    let model = spec.model(&cfg);
    let mut g = c.benchmark_group("moo_power_model");
    g.bench_function("time_only", |b| {
        b.iter(|| black_box(execute(&arch, black_box(&model))))
    });
    g.bench_function("time_plus_energy", |b| {
        b.iter(|| black_box(execute_with_energy(&arch, black_box(&model))))
    });
    g.finish();
}

fn evaluator_energy_overhead(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let problem = bat_kernels::benchmark("gemm", arch).unwrap();
    let mut g = c.benchmark_group("moo_evaluator");
    g.throughput(Throughput::Elements(256));
    g.bench_function("time_only_256_evals", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
            for i in 0..256u64 {
                black_box(eval.evaluate_index(i * 17));
            }
        })
    });
    g.bench_function("with_energy_256_evals", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&problem, Protocol::default())
                .without_cache()
                .with_energy();
            for i in 0..256u64 {
                black_box(eval.evaluate_index(i * 17));
            }
        })
    });
    g.finish();
}

fn nsga2_end_to_end(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let problem = bat_kernels::benchmark("gemm", arch).unwrap();
    let budget = 300u64;
    let mut g = c.benchmark_group("moo_nsga2");
    g.throughput(Throughput::Elements(budget));
    g.bench_function("gemm_3090_300_evals", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&problem, Protocol::default())
                .with_energy()
                .with_budget(budget);
            let run = Nsga2::default().tune(&eval, 42);
            black_box(front_of_run(&run, 16).len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    archive_insert_throughput,
    power_model_overhead,
    evaluator_energy_overhead,
    nsga2_end_to_end
);
criterion_main!(benches);
