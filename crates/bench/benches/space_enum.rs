//! Search-space enumeration throughput: the restriction VM and the
//! prefix-pruned counting/enumeration engine against the brute-force
//! baseline, on the paper's GEMM, Hotspot and Dedispersion spaces.
//!
//! The brute-force baselines on Hotspot (2.2×10⁷ configurations) and
//! Dedispersion (1.2×10⁸) take minutes per sample on a small host, so they
//! only run when `BAT_BENCH_BRUTE=1` is set; GEMM's (8.3×10⁴) always runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bat_kernels::kernel_by_name;
use bat_space::expr::Program;
use bat_space::Neighborhood;

const SPACES: [&str; 3] = ["gemm", "hotspot", "dedisp"];

fn bench_brute_everywhere() -> bool {
    std::env::var("BAT_BENCH_BRUTE").is_ok_and(|v| v == "1")
}

/// One restriction evaluation: flat bytecode VM vs the tree-walking
/// evaluator, over every restriction of the space on a fixed config.
fn restriction_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("restriction_eval");
    for name in SPACES {
        let space = kernel_by_name(name).unwrap().build_space();
        let config = space.config_at(space.cardinality() / 2);
        let programs: Vec<Program> = space
            .restrictions()
            .iter()
            .map(|r| Program::compile(&r.compiled))
            .collect();
        g.throughput(Throughput::Elements(programs.len() as u64));
        g.bench_function(format!("{name}/vm"), |b| {
            b.iter(|| {
                programs
                    .iter()
                    .filter(|p| p.eval_bool(black_box(&config)))
                    .count()
            })
        });
        g.bench_function(format!("{name}/tree_walk"), |b| {
            b.iter(|| {
                space
                    .restrictions()
                    .iter()
                    .filter(|r| r.compiled.eval_bool(black_box(&config)))
                    .count()
            })
        });
    }
    g.finish();
}

/// Exact constrained counts: pruned odometer vs constraint-graph factoring
/// vs brute force over the full cartesian product.
fn count_valid(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_valid");
    g.sample_size(10);
    for name in SPACES {
        let space = kernel_by_name(name).unwrap().build_space();
        g.throughput(Throughput::Elements(space.cardinality()));
        g.bench_function(format!("{name}/pruned"), |b| {
            b.iter(|| black_box(space.count_valid()))
        });
        g.bench_function(format!("{name}/factored"), |b| {
            b.iter(|| black_box(space.count_valid_factored()))
        });
        if name == "gemm" || bench_brute_everywhere() {
            g.bench_function(format!("{name}/brute_force"), |b| {
                b.iter(|| black_box(space.count_valid_brute()))
            });
        }
    }
    g.finish();
}

/// Full enumeration of the valid index set (the paper exhausts GEMM and
/// Convolution among others).
fn valid_indices(c: &mut Criterion) {
    let mut g = c.benchmark_group("valid_indices");
    g.sample_size(10);
    for name in ["gemm", "convolution"] {
        let space = kernel_by_name(name).unwrap().build_space();
        g.throughput(Throughput::Elements(space.cardinality()));
        g.bench_function(name, |b| b.iter(|| black_box(space.valid_indices().len())));
    }
    g.finish();
}

/// Valid-neighbour queries (the inner loop of local search and of fitness-
/// flow-graph construction): patched single-slot re-checks.
fn valid_neighbors(c: &mut Criterion) {
    let mut g = c.benchmark_group("valid_neighbors");
    for name in SPACES {
        let space = kernel_by_name(name).unwrap().build_space();
        let indices: Vec<u64> = (1..=64u64)
            .map(|i| i * (space.cardinality() / 65))
            .collect();
        g.throughput(Throughput::Elements(indices.len() as u64));
        g.bench_function(name, |b| {
            b.iter(|| {
                indices
                    .iter()
                    .map(|&i| {
                        Neighborhood::HammingAny
                            .valid_neighbor_indices(&space, i)
                            .len()
                    })
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    restriction_eval,
    count_valid,
    valid_indices,
    valid_neighbors
);
criterion_main!(benches);
