//! Benchmarks of the model-based tuner family and the studies built on it:
//! surrogate-model costs (GP, random forest, Parzen densities), the
//! acquisition-function ablation, the tuner-comparison harness and the
//! dynamic-autotuning simulation.
//!
//! These are the suite-side costs an autotuning practitioner pays *next to*
//! kernel measurements; the paper's interface argument only holds if the
//! harness itself stays cheap relative to a kernel launch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bat_analysis::{
    compare_tuners, noise_sensitivity, ComparisonSettings, OnlinePolicy, OnlineSimulation,
};
use bat_bench::{landscape, problem};
use bat_core::{Evaluator, Protocol, TuningProblem};
use bat_gpusim::GpuArch;
use bat_ml::{Dataset, ForestParams, GaussianProcess, GpParams, KernelKind, RandomForest};
use bat_tuners::{Acquisition, BayesianOptimization, RandomSearch, SmacTuner, Tpe, Tuner};

/// Landscape-derived regression rows for surrogate fitting.
fn training_rows(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let p = problem("convolution", GpuArch::rtx_3090());
    let space = p.space();
    let l = landscape("convolution", GpuArch::rtx_3090(), n);
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for s in l.samples.iter().filter(|s| s.time_ms.is_some()).take(n) {
        rows.push(space.config_at(s.index).iter().map(|&v| v as f64).collect());
        ys.push(s.time_ms.unwrap().ln());
    }
    (rows, ys)
}

/// Exact-GP fitting: the O(n³ × grid) cost that motivates the observation
/// cap in `BayesianOptimization`.
fn gp_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner_gp_fit");
    g.sample_size(10);
    for n in [50usize, 100, 200] {
        let (rows, ys) = training_rows(n);
        g.bench_function(format!("grid_fit_n{n}"), |b| {
            b.iter(|| black_box(GaussianProcess::fit(&rows, &ys, &GpParams::default())))
        });
        let fixed = GpParams::fixed(KernelKind::Matern52, 0.35, 1e-3);
        g.bench_function(format!("fixed_fit_n{n}"), |b| {
            b.iter(|| black_box(GaussianProcess::fit(&rows, &ys, &fixed)))
        });
    }
    g.finish();
}

/// GP posterior prediction (per-candidate cost of acquisition scoring).
fn gp_predict(c: &mut Criterion) {
    let (rows, ys) = training_rows(150);
    let gp = GaussianProcess::fit(&rows, &ys, &GpParams::default());
    let mut g = c.benchmark_group("tuner_gp_predict");
    g.bench_function("posterior_n150", |b| {
        b.iter(|| black_box(gp.predict(&rows[7])))
    });
    g.finish();
}

/// Random-forest fitting (SMAC's surrogate) on the same data as the GP,
/// for a like-for-like surrogate-cost comparison.
fn forest_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner_forest_fit");
    g.sample_size(10);
    for n in [100usize, 400] {
        let (rows, ys) = training_rows(n);
        let names: Vec<String> = (0..rows[0].len()).map(|i| format!("f{i}")).collect();
        let data = Dataset::new(&rows, ys, names);
        g.bench_function(format!("fit_n{n}"), |b| {
            b.iter(|| black_box(RandomForest::fit(&data, &ForestParams::default())))
        });
    }
    g.finish();
}

/// Ablation: acquisition functions at equal budget on the convolution
/// benchmark (the design choice DESIGN.md §7 calls out for GP-BO).
fn ablation_acquisition(c: &mut Criterion) {
    let p = problem("convolution", GpuArch::rtx_3090());
    let mut g = c.benchmark_group("ablation_acquisition");
    g.sample_size(10);
    for (label, acq) in [
        ("ei", Acquisition::ExpectedImprovement),
        ("pi", Acquisition::ProbabilityOfImprovement),
        ("lcb2", Acquisition::LowerConfidenceBound { beta: 2.0 }),
    ] {
        let tuner = BayesianOptimization::with_acquisition(acq);
        g.bench_function(label, |b| {
            b.iter(|| {
                let eval = Evaluator::with_protocol(&p, Protocol::default()).with_budget(60);
                black_box(tuner.tune(&eval, 3))
            })
        });
    }
    g.finish();
}

/// Ablation: TPE with and without static restriction filtering on GEMM
/// (78% of GEMM's cartesian space is restricted — filtering is the
/// difference between converging and thrashing).
fn ablation_tpe_restrictions(c: &mut Criterion) {
    let p = problem("gemm", GpuArch::rtx_2080_ti());
    let mut g = c.benchmark_group("ablation_tpe_restrictions");
    g.sample_size(10);
    for (label, filter) in [("filtered", true), ("unfiltered", false)] {
        let tuner = Tpe {
            respect_restrictions: filter,
            ..Tpe::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                let eval = Evaluator::with_protocol(&p, Protocol::default()).with_budget(80);
                black_box(tuner.tune(&eval, 5))
            })
        });
    }
    g.finish();
}

/// The comparison harness itself: a 3-tuner × 3-repeat study on N-body.
fn comparison_harness(c: &mut Criterion) {
    let p = problem("nbody", GpuArch::rtx_3060());
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomSearch),
        Box::new(Tpe::default()),
        Box::new(SmacTuner::default()),
    ];
    let settings = ComparisonSettings {
        budget: 60,
        repeats: 3,
        ..ComparisonSettings::default()
    };
    let mut g = c.benchmark_group("tuner_comparison_harness");
    g.sample_size(10);
    g.bench_function("nbody_3x3", |b| {
        b.iter(|| black_box(compare_tuners(&p, &tuners, &settings, None)))
    });
    g.finish();
}

/// Ablation: the measurement protocol's noise defence — selection quality
/// under 0%/5%/20% run-to-run noise with 1 vs 5 runs per configuration.
fn ablation_measurement_noise(c: &mut Criterion) {
    let p = problem("expdist", GpuArch::rtx_3060());
    let mut g = c.benchmark_group("ablation_measurement_noise");
    g.sample_size(10);
    for (label, runs) in [("runs1", 1u32), ("runs5", 5u32)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(noise_sensitivity(
                    &p,
                    &RandomSearch,
                    &[0.0, 0.05, 0.20],
                    runs,
                    60,
                    5,
                    1,
                ))
            })
        });
    }
    g.finish();
}

/// Dynamic autotuning: the per-application-run cost of the online
/// simulation (exploration + exploitation bookkeeping).
fn online_simulation(c: &mut Criterion) {
    let p = problem("pnpoly", GpuArch::rtx_titan());
    let sim = OnlineSimulation {
        invocations: 2_000,
        policy: OnlinePolicy::TuneThenExploit { tuning_budget: 100 },
        protocol: Protocol::default(),
    };
    let mut g = c.benchmark_group("online_simulation");
    g.sample_size(10);
    g.bench_function("pnpoly_2000_invocations", |b| {
        b.iter(|| black_box(sim.run(&p, &RandomSearch, None, None, 1)))
    });
    g.finish();
}

criterion_group!(
    benches,
    gp_fit,
    gp_predict,
    forest_fit,
    ablation_acquisition,
    ablation_tpe_restrictions,
    ablation_measurement_noise,
    comparison_harness,
    online_simulation
);
criterion_main!(benches);
