//! Tables I–VII and Table VIII: building the seven configuration spaces and
//! counting their (constrained) sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bat_kernels::{kernel_by_name, BENCHMARK_NAMES};

/// Tables I–VII: construct every benchmark's space (parameters parsed,
/// restrictions compiled).
fn tables_1_to_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables_i_vii_space_construction");
    for name in BENCHMARK_NAMES {
        g.bench_function(name, |b| {
            let k = kernel_by_name(name).unwrap();
            b.iter(|| black_box(k.build_space().cardinality()))
        });
    }
    g.finish();
}

/// Table VIII "Constrained": exact counting via constraint-graph factoring.
fn table8_constrained_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8_constrained_factored");
    g.sample_size(10);
    for name in BENCHMARK_NAMES {
        let k = kernel_by_name(name).unwrap();
        let space = k.build_space();
        g.bench_function(name, |b| b.iter(|| black_box(space.count_valid_factored())));
    }
    g.finish();
}

/// Table VIII "Constrained" for GEMM by brute force (the paper-exact 17 956),
/// the baseline the factored counter replaces.
fn table8_gemm_brute_force(c: &mut Criterion) {
    let space = kernel_by_name("gemm").unwrap().build_space();
    c.bench_function("table8_gemm_constrained_brute_force", |b| {
        b.iter_batched(
            || space.clone(),
            |s| {
                let n = s.count_valid();
                assert_eq!(n, 17_956);
                black_box(n)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    tables_1_to_7,
    table8_constrained_counts,
    table8_gemm_brute_force
);
criterion_main!(benches);
