//! Micro-benchmarks of the ask/tell batching path: evaluator batch
//! throughput against element-wise serial evaluation, and full batched
//! vs serial tunes of the population tuners (GA/PSO) on gemm.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bat_core::{Evaluator, Protocol};
use bat_gpusim::GpuArch;
use bat_tuners::{GeneticAlgorithm, ParticleSwarm, Tuner};

/// A deterministic scattered index stream (no RNG: benches must not
/// depend on rand's stream shape).
fn index_stream(n: u64, card: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 2654435761) % card).collect()
}

fn evaluator_batch_vs_serial(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let problem = bat_kernels::benchmark("gemm", arch).unwrap();
    let card = bat_core::TuningProblem::space(&problem).cardinality();
    let n = 4096u64;
    let indices = index_stream(n, card);
    let mut g = c.benchmark_group("batch_eval");
    g.throughput(Throughput::Elements(n));
    g.bench_function("serial_4096", |b| {
        b.iter(|| {
            let eval = Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
            for &i in &indices {
                black_box(eval.evaluate_index(i));
            }
        })
    });
    for batch in [8usize, 64, 512, 1024] {
        g.bench_function(format!("batched_4096_chunk{batch}"), |b| {
            b.iter(|| {
                let eval = Evaluator::with_protocol(&problem, Protocol::default()).without_cache();
                for chunk in indices.chunks(batch) {
                    black_box(eval.evaluate_batch(chunk).len());
                }
            })
        });
    }
    g.finish();
}

fn population_tuners_batched_vs_serial(c: &mut Criterion) {
    let arch = GpuArch::rtx_3090();
    let problem = bat_kernels::benchmark("gemm", arch).unwrap();
    let budget = 2_000u64;
    let mut g = c.benchmark_group("batch_tune");
    g.throughput(Throughput::Elements(budget));
    for (label, batch) in [("batch1", 1u32), ("batch20", 20)] {
        g.bench_function(format!("ga_gemm_2000_{label}"), |b| {
            b.iter(|| {
                let eval =
                    Evaluator::with_protocol(&problem, Protocol::default().with_batch(batch))
                        .with_budget(budget);
                black_box(GeneticAlgorithm::default().tune(&eval, 42).trials.len())
            })
        });
    }
    for (label, batch) in [("batch1", 1u32), ("batch15", 15)] {
        g.bench_function(format!("pso_gemm_2000_{label}"), |b| {
            b.iter(|| {
                let eval =
                    Evaluator::with_protocol(&problem, Protocol::default().with_batch(batch))
                        .with_budget(budget);
                black_box(ParticleSwarm::default().tune(&eval, 42).trials.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    evaluator_batch_vs_serial,
    population_tuners_batched_vs_serial
);
criterion_main!(benches);
