//! One Criterion group per figure of the paper's evaluation section.
//!
//! Each group regenerates the figure's data series from scratch (landscape
//! collection is hoisted where the figure's own computation is the subject).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bat_analysis::{
    default_gbdt_params, default_proportions, feature_importance, max_speedup_over_median,
    portability_matrix, proportion_of_centrality, random_search_convergence, FitnessFlowGraph,
    Landscape, PageRankParams, PerformanceDistribution,
};
use bat_bench::{landscape, problem, times_of};
use bat_core::TuningProblem;
use bat_gpusim::GpuArch;
use bat_space::Neighborhood;

/// Fig. 1: performance distributions centred on the median configuration.
fn fig1_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_distributions");
    g.sample_size(10);
    for name in ["pnpoly", "nbody", "hotspot"] {
        let l = landscape(name, GpuArch::rtx_3090(), 2_000);
        let times = l.times();
        g.bench_function(name, |b| {
            b.iter(|| black_box(PerformanceDistribution::from_times(&times, 20)))
        });
    }
    g.finish();
}

/// Fig. 2: median-of-100 random-search convergence curves.
fn fig2_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_convergence");
    g.sample_size(10);
    for name in ["gemm", "expdist"] {
        let l = landscape(name, GpuArch::rtx_titan(), 2_000);
        let times = times_of(&l);
        g.bench_function(name, |b| {
            b.iter(|| black_box(random_search_convergence(&times, 1_000, 100, 7)))
        });
    }
    g.finish();
}

/// Fig. 3: FFG construction + PageRank + proportion of centrality.
fn fig3_centrality(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_centrality");
    g.sample_size(10);
    for name in ["pnpoly", "gemm"] {
        let p = problem(name, GpuArch::rtx_2080_ti());
        let l = Landscape::exhaustive(&p);
        g.bench_function(format!("{name}_ffg_build"), |b| {
            b.iter(|| {
                black_box(FitnessFlowGraph::build(
                    p.space(),
                    &l,
                    Neighborhood::HammingAny,
                ))
            })
        });
        let ffg = FitnessFlowGraph::build(p.space(), &l, Neighborhood::HammingAny);
        let props = default_proportions();
        g.bench_function(format!("{name}_pagerank_centrality"), |b| {
            b.iter(|| {
                black_box(proportion_of_centrality(
                    &ffg,
                    &props,
                    &PageRankParams::default(),
                ))
            })
        });
    }
    g.finish();
}

/// Fig. 4: max speedup over the median configuration, full protocol
/// (landscape collection + statistic) per benchmark.
fn fig4_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_speedup_full_protocol");
    g.sample_size(10);
    for name in ["nbody", "hotspot"] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let l = landscape(name, GpuArch::rtx_3060(), 1_000);
                black_box(max_speedup_over_median(&l))
            })
        });
    }
    g.finish();
}

/// Fig. 5: portability matrices across the four-GPU testbed.
fn fig5_portability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_portability");
    g.sample_size(10);
    let problems: Vec<_> = GpuArch::paper_testbed()
        .into_iter()
        .map(|a| problem("nbody", a))
        .collect();
    let landscapes: Vec<_> = problems.iter().map(|p| Landscape::exhaustive(p)).collect();
    g.bench_function("nbody_4x4_matrix", |b| {
        b.iter(|| {
            let refs: Vec<&dyn TuningProblem> =
                problems.iter().map(|p| p as &dyn TuningProblem).collect();
            black_box(portability_matrix(&refs, &landscapes))
        })
    });
    g.finish();
}

/// Fig. 6: GBDT training + permutation feature importance.
fn fig6_pfi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_pfi");
    g.sample_size(10);
    let p = problem("nbody", GpuArch::rtx_3090());
    let l = Landscape::exhaustive(&p);
    g.bench_function("nbody_gbdt_plus_pfi", |b| {
        b.iter(|| {
            black_box(feature_importance(
                p.space(),
                &l,
                &default_gbdt_params(),
                2,
                0,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig1_distributions,
    fig2_convergence,
    fig3_centrality,
    fig4_speedup,
    fig5_portability,
    fig6_pfi
);
criterion_main!(benches);
