//! Simulated annealing and basin hopping.
//!
//! Both are ask/tell state machines. Annealing proposes random neighbours
//! of the current point (a whole window of them at larger batch sizes,
//! processed as a sequential proposal stream); basin hopping reuses the
//! shared [`Descent`] core between its jumps.

use bat_core::{Evaluator, TuningRun};
use bat_space::{ConfigSpace, Neighborhood};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::local::{Descent, LocalSearch, Strategy};
use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Simulated annealing with geometric cooling over a Hamming neighbourhood.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Initial temperature as a fraction of the first observed objective.
    pub initial_temp_frac: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
    /// Restart temperature floor (relative).
    pub min_temp_frac: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temp_frac: 0.5,
            cooling: 0.98,
            min_temp_frac: 1e-3,
        }
    }
}

enum SaState {
    /// Drawing a fresh random starting point.
    Fresh,
    /// Annealing around `current`.
    Cooling {
        current: u64,
        current_val: f64,
        temp: f64,
        floor: f64,
    },
}

struct SaStep<'a> {
    cfg: &'a SimulatedAnnealing,
    space: &'a ConfigSpace,
    rng: StdRng,
    card: u64,
    state: SaState,
}

impl StepTuner for SaStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        loop {
            match &self.state {
                SaState::Fresh => {
                    return (0..ctx.batch)
                        .map(|_| self.rng.random_range(0..self.card))
                        .collect();
                }
                SaState::Cooling { current, .. } => {
                    // One neighbourhood computation per ask: every batch
                    // slot samples the same list (the classic loop's
                    // per-candidate recomputation produced the identical
                    // list, `current` being fixed until the next tell).
                    let neighbors = Neighborhood::HammingAny.neighbor_indices(self.space, *current);
                    if neighbors.is_empty() {
                        // No neighbours at all: restart from a fresh point.
                        self.state = SaState::Fresh;
                        continue;
                    }
                    return (0..ctx.batch)
                        .map(|_| {
                            *neighbors
                                .as_slice()
                                .choose(&mut self.rng)
                                .expect("non-empty")
                        })
                        .collect();
                }
            }
        }
    }

    fn tell(&mut self, results: &[Told]) {
        match &mut self.state {
            SaState::Fresh => {
                for r in results {
                    if let Some(v) = r.value() {
                        let temp = v * self.cfg.initial_temp_frac;
                        let floor = v * self.cfg.min_temp_frac;
                        if temp > floor {
                            self.state = SaState::Cooling {
                                current: r.index,
                                current_val: v,
                                temp,
                                floor,
                            };
                        }
                        // Otherwise the schedule is empty: stay Fresh,
                        // exactly like the classic loop's instant restart.
                        break;
                    }
                }
            }
            SaState::Cooling {
                current,
                current_val,
                temp,
                floor,
            } => {
                for r in results {
                    if let Some(v) = r.value() {
                        let accept = v < *current_val || {
                            let p = (-(v - *current_val) / *temp).exp();
                            self.rng.random_range(0.0..1.0) < p
                        };
                        if accept {
                            *current = r.index;
                            *current_val = v;
                        }
                    }
                    *temp *= self.cfg.cooling;
                    if *temp <= *floor {
                        self.state = SaState::Fresh;
                        break;
                    }
                }
            }
        }
    }
}

impl SimulatedAnnealing {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();

        'outer: while eval.has_budget() {
            // Fresh start.
            let (mut current, mut current_val) = loop {
                let idx = rng.random_range(0..card);
                match record_eval(eval, &mut run, idx) {
                    Recorded::Exhausted => break 'outer,
                    Recorded::Failed => {}
                    Recorded::Ok(v) => break (idx, v),
                }
            };
            let mut temp = current_val * self.initial_temp_frac;
            let floor = current_val * self.min_temp_frac;
            while temp > floor {
                let neighbors = Neighborhood::HammingAny.neighbor_indices(space, current);
                let Some(&candidate) = neighbors.as_slice().choose(&mut rng) else {
                    break;
                };
                match record_eval(eval, &mut run, candidate) {
                    Recorded::Exhausted => break 'outer,
                    Recorded::Failed => {}
                    Recorded::Ok(v) => {
                        let accept = v < current_val || {
                            let p = (-(v - current_val) / temp).exp();
                            rng.random_range(0.0..1.0) < p
                        };
                        if accept {
                            current = candidate;
                            current_val = v;
                        }
                    }
                }
                temp *= self.cooling;
            }
        }
        run
    }
}

impl Tuner for SimulatedAnnealing {
    fn name(&self) -> &str {
        "simulated-annealing"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(SaStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
            state: SaState::Fresh,
        })
    }
}

/// Basin hopping: local descent to a minimum, then a large random jump,
/// keeping the best basin found.
#[derive(Debug, Clone, Copy)]
pub struct BasinHopping {
    /// Inner descent.
    pub inner: LocalSearch,
    /// Jump size in coordinate moves.
    pub jump: usize,
}

impl Default for BasinHopping {
    fn default() -> Self {
        BasinHopping {
            inner: LocalSearch::default(),
            jump: 5,
        }
    }
}

enum BhState {
    /// Drawing the initial random point.
    Start,
    /// First descent (establishes `home` unconditionally).
    InitialDescent(Descent),
    /// Proposing jumps from `home`.
    Jump,
    /// Descending from an accepted jump.
    JumpDescent(Descent),
}

struct BhStep<'a> {
    cfg: &'a BasinHopping,
    space: &'a ConfigSpace,
    rng: StdRng,
    card: u64,
    home: Option<(u64, f64)>,
    state: BhState,
}

impl BhStep<'_> {
    /// Basin hopping's descent is the classic first-improvement walk over
    /// the inner neighbourhood (its historical helper ignored the inner
    /// strategy field, which is preserved here).
    fn begin_descent(&mut self, start: u64, val: f64) -> Descent {
        Descent::begin(
            self.space,
            Strategy::FirstImprovement,
            self.cfg.inner.neighborhood,
            &mut self.rng,
            start,
            val,
        )
    }

    fn jump_candidate(&mut self) -> u64 {
        let (home, _) = self.home.expect("jumping requires a home");
        let mut pos = ordinal::positions_of(self.space, home);
        for _ in 0..self.cfg.jump {
            ordinal::mutate_one(self.space, &mut pos, &mut self.rng);
        }
        ordinal::index_of(self.space, &pos)
    }

    /// Monotone basin acceptance: adopt the new minimum when it is at
    /// least as good (the classic loop compared deterministic re-measured
    /// values, which this is equivalent to).
    fn accept(&mut self, idx: u64, v: f64) {
        if v <= self.home.expect("home set").1 {
            self.home = Some((idx, v));
        }
    }
}

impl StepTuner for BhStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        loop {
            match &mut self.state {
                BhState::Start => {
                    return (0..ctx.batch)
                        .map(|_| self.rng.random_range(0..self.card))
                        .collect();
                }
                BhState::Jump => {
                    return (0..ctx.batch).map(|_| self.jump_candidate()).collect();
                }
                BhState::InitialDescent(d) => {
                    if d.stuck() {
                        self.home = Some(d.minimum());
                        self.state = BhState::Jump;
                        continue;
                    }
                    return d.ask(ctx.batch);
                }
                BhState::JumpDescent(d) => {
                    if d.stuck() {
                        let (idx, v) = d.minimum();
                        self.accept(idx, v);
                        self.state = BhState::Jump;
                        continue;
                    }
                    return d.ask(ctx.batch);
                }
            }
        }
    }

    fn tell(&mut self, results: &[Told]) {
        match &mut self.state {
            BhState::Start => {
                for r in results {
                    if let Some(v) = r.value() {
                        let (index, value) = (r.index, v);
                        let d = self.begin_descent(index, value);
                        self.state = BhState::InitialDescent(d);
                        break;
                    }
                }
            }
            BhState::Jump => {
                for r in results {
                    if let Some(v) = r.value() {
                        let (index, value) = (r.index, v);
                        let d = self.begin_descent(index, value);
                        self.state = BhState::JumpDescent(d);
                        break;
                    }
                }
            }
            BhState::InitialDescent(d) => {
                if let Some(min) = d.tell(self.space, &mut self.rng, results) {
                    self.home = Some(min);
                    self.state = BhState::Jump;
                }
            }
            BhState::JumpDescent(d) => {
                if let Some((idx, v)) = d.tell(self.space, &mut self.rng, results) {
                    self.accept(idx, v);
                    self.state = BhState::Jump;
                }
            }
        }
    }
}

impl BasinHopping {
    /// The pre-ask/tell pull loop (equivalence oracle, see
    /// [`SimulatedAnnealing::reference_tune`]).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();

        // Initial random point.
        let start = loop {
            let idx = rng.random_range(0..card);
            match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => return run,
                Recorded::Failed => {}
                Recorded::Ok(v) => break (idx, v),
            }
        };
        let Some((mut home, _)) = reference_descend(&self.inner, eval, &mut run, &mut rng, start)
        else {
            return run;
        };

        while eval.has_budget() {
            let mut pos = ordinal::positions_of(space, home);
            for _ in 0..self.jump {
                ordinal::mutate_one(space, &mut pos, &mut rng);
            }
            let candidate = ordinal::index_of(space, &pos);
            let c_val = match record_eval(eval, &mut run, candidate) {
                Recorded::Exhausted => break,
                Recorded::Failed => continue,
                Recorded::Ok(v) => v,
            };
            match reference_descend(&self.inner, eval, &mut run, &mut rng, (candidate, c_val)) {
                None => break,
                Some((idx, _)) => {
                    // Accept the new basin if its minimum beats the old one
                    // (monotone acceptance).
                    let home_best = run
                        .trials
                        .iter()
                        .filter(|t| t.index == home)
                        .filter_map(|t| t.time_ms())
                        .fold(f64::INFINITY, f64::min);
                    let new_best = run
                        .trials
                        .iter()
                        .filter(|t| t.index == idx)
                        .filter_map(|t| t.time_ms())
                        .fold(f64::INFINITY, f64::min);
                    if new_best <= home_best {
                        home = idx;
                    }
                }
            }
        }
        run
    }
}

impl Tuner for BasinHopping {
    fn name(&self) -> &str {
        "basin-hopping"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(BhStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
            home: None,
            state: BhState::Start,
        })
    }
}

/// Shared first-improvement descent helper of the reference oracle
/// (verbatim the pre-ask/tell basin-hopping inner loop).
fn reference_descend(
    inner: &LocalSearch,
    eval: &Evaluator<'_>,
    run: &mut TuningRun,
    rng: &mut StdRng,
    start: (u64, f64),
) -> Option<(u64, f64)> {
    use rand::seq::SliceRandom;
    let space = eval.problem().space();
    let (mut current, mut current_val) = start;
    loop {
        let mut neighbors = inner.neighborhood.neighbor_indices(space, current);
        neighbors.shuffle(rng);
        let mut moved = false;
        for n in neighbors {
            match record_eval(eval, run, n) {
                Recorded::Exhausted => return None,
                Recorded::Failed => {}
                Recorded::Ok(v) => {
                    if v < current_val {
                        current = n;
                        current_val = v;
                        moved = true;
                        break;
                    }
                }
            }
        }
        if !moved {
            return Some((current, current_val));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn multimodal(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        // Two basins: a shallow one near (3,3) and the global one at (12,12).
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 15))
            .param(Param::int_range("y", 0, 15))
            .build()
            .unwrap();
        SyntheticProblem::new("twobasin", "sim", space, |c| {
            let d1 = ((c[0] - 3).pow(2) + (c[1] - 3).pow(2)) as f64;
            let d2 = ((c[0] - 12).pow(2) + (c[1] - 12).pow(2)) as f64;
            Ok((5.0 + d1).min(1.0 + d2))
        })
    }

    #[test]
    fn annealing_finds_global_basin() {
        let p = multimodal();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_500);
        let run = SimulatedAnnealing::default().tune(&eval, 3);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }

    #[test]
    fn basin_hopping_escapes_shallow_basin() {
        let p = multimodal();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_500);
        let run = BasinHopping::default().tune(&eval, 4);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }

    #[test]
    fn budget_respected() {
        let p = multimodal();
        for budget in [5u64, 40] {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = SimulatedAnnealing::default().tune(&eval, 1);
            assert_eq!(run.trials.len() as u64, budget);
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = BasinHopping::default().tune(&eval, 1);
            assert_eq!(run.trials.len() as u64, budget);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = multimodal();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(200);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(200);
        assert_eq!(
            SimulatedAnnealing::default().tune(&e1, 9),
            SimulatedAnnealing::default().tune(&e2, 9)
        );
    }

    #[test]
    fn step_driver_matches_reference_loops_at_batch_one() {
        let p = multimodal();
        for seed in 0..6 {
            let sa = SimulatedAnnealing::default();
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(250);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(250);
            assert_eq!(sa.tune(&e1, seed), sa.reference_tune(&e2, seed));

            let bh = BasinHopping::default();
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(250);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(250);
            assert_eq!(bh.tune(&e1, seed), bh.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_runs_stay_deterministic_and_converge() {
        let p = multimodal();
        for batch in [4u32, 16] {
            let protocol = Protocol::noiseless().with_batch(batch);
            let e1 = Evaluator::with_protocol(&p, protocol).with_budget(1_500);
            let e2 = Evaluator::with_protocol(&p, protocol).with_budget(1_500);
            let a = SimulatedAnnealing::default().tune(&e1, 3);
            let b = SimulatedAnnealing::default().tune(&e2, 3);
            assert_eq!(a, b);
            assert_eq!(a.trials.len(), 1_500);
            assert_eq!(a.best().unwrap().time_ms(), Some(1.0));
        }
    }
}
