//! Simulated annealing and basin hopping.

use bat_core::{Evaluator, TuningRun};
use bat_space::Neighborhood;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::local::LocalSearch;
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Simulated annealing with geometric cooling over a Hamming neighbourhood.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Initial temperature as a fraction of the first observed objective.
    pub initial_temp_frac: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
    /// Restart temperature floor (relative).
    pub min_temp_frac: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temp_frac: 0.5,
            cooling: 0.98,
            min_temp_frac: 1e-3,
        }
    }
}

impl Tuner for SimulatedAnnealing {
    fn name(&self) -> &str {
        "simulated-annealing"
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();

        'outer: while eval.has_budget() {
            // Fresh start.
            let (mut current, mut current_val) = loop {
                let idx = rng.random_range(0..card);
                match record_eval(eval, &mut run, idx) {
                    Recorded::Exhausted => break 'outer,
                    Recorded::Failed => {}
                    Recorded::Ok(v) => break (idx, v),
                }
            };
            let mut temp = current_val * self.initial_temp_frac;
            let floor = current_val * self.min_temp_frac;
            while temp > floor {
                let neighbors = Neighborhood::HammingAny.neighbor_indices(space, current);
                let Some(&candidate) = neighbors.as_slice().choose(&mut rng) else {
                    break;
                };
                match record_eval(eval, &mut run, candidate) {
                    Recorded::Exhausted => break 'outer,
                    Recorded::Failed => {}
                    Recorded::Ok(v) => {
                        let accept = v < current_val || {
                            let p = (-(v - current_val) / temp).exp();
                            rng.random_range(0.0..1.0) < p
                        };
                        if accept {
                            current = candidate;
                            current_val = v;
                        }
                    }
                }
                temp *= self.cooling;
            }
        }
        run
    }
}

/// Basin hopping: local descent to a minimum, then a large random jump,
/// keeping the best basin found.
#[derive(Debug, Clone, Copy)]
pub struct BasinHopping {
    /// Inner descent.
    pub inner: LocalSearch,
    /// Jump size in coordinate moves.
    pub jump: usize,
}

impl Default for BasinHopping {
    fn default() -> Self {
        BasinHopping {
            inner: LocalSearch::default(),
            jump: 5,
        }
    }
}

impl Tuner for BasinHopping {
    fn name(&self) -> &str {
        "basin-hopping"
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();

        // Initial random point.
        let start = loop {
            let idx = rng.random_range(0..card);
            match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => return run,
                Recorded::Failed => {}
                Recorded::Ok(v) => break (idx, v),
            }
        };
        let Some((mut home, _)) = descend(&self.inner, eval, &mut run, &mut rng, start) else {
            return run;
        };

        while eval.has_budget() {
            let mut pos = ordinal::positions_of(space, home);
            for _ in 0..self.jump {
                ordinal::mutate_one(space, &mut pos, &mut rng);
            }
            let candidate = ordinal::index_of(space, &pos);
            let c_val = match record_eval(eval, &mut run, candidate) {
                Recorded::Exhausted => break,
                Recorded::Failed => continue,
                Recorded::Ok(v) => v,
            };
            match descend(&self.inner, eval, &mut run, &mut rng, (candidate, c_val)) {
                None => break,
                Some((idx, _)) => {
                    // Accept the new basin if its minimum beats the old one
                    // (monotone acceptance).
                    let home_best = run
                        .trials
                        .iter()
                        .filter(|t| t.index == home)
                        .filter_map(|t| t.time_ms())
                        .fold(f64::INFINITY, f64::min);
                    let new_best = run
                        .trials
                        .iter()
                        .filter(|t| t.index == idx)
                        .filter_map(|t| t.time_ms())
                        .fold(f64::INFINITY, f64::min);
                    if new_best <= home_best {
                        home = idx;
                    }
                }
            }
        }
        run
    }
}

/// Shared descent helper (exposed for basin hopping; `LocalSearch::descend`
/// is private to its module).
fn descend(
    inner: &LocalSearch,
    eval: &Evaluator<'_>,
    run: &mut TuningRun,
    rng: &mut StdRng,
    start: (u64, f64),
) -> Option<(u64, f64)> {
    use rand::seq::SliceRandom;
    let space = eval.problem().space();
    let (mut current, mut current_val) = start;
    loop {
        let mut neighbors = inner.neighborhood.neighbor_indices(space, current);
        neighbors.shuffle(rng);
        let mut moved = false;
        for n in neighbors {
            match record_eval(eval, run, n) {
                Recorded::Exhausted => return None,
                Recorded::Failed => {}
                Recorded::Ok(v) => {
                    if v < current_val {
                        current = n;
                        current_val = v;
                        moved = true;
                        break;
                    }
                }
            }
        }
        if !moved {
            return Some((current, current_val));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn multimodal(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        // Two basins: a shallow one near (3,3) and the global one at (12,12).
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 15))
            .param(Param::int_range("y", 0, 15))
            .build()
            .unwrap();
        SyntheticProblem::new("twobasin", "sim", space, |c| {
            let d1 = ((c[0] - 3).pow(2) + (c[1] - 3).pow(2)) as f64;
            let d2 = ((c[0] - 12).pow(2) + (c[1] - 12).pow(2)) as f64;
            Ok((5.0 + d1).min(1.0 + d2))
        })
    }

    #[test]
    fn annealing_finds_global_basin() {
        let p = multimodal();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_500);
        let run = SimulatedAnnealing::default().tune(&eval, 3);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }

    #[test]
    fn basin_hopping_escapes_shallow_basin() {
        let p = multimodal();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_500);
        let run = BasinHopping::default().tune(&eval, 4);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }

    #[test]
    fn budget_respected() {
        let p = multimodal();
        for budget in [5u64, 40] {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = SimulatedAnnealing::default().tune(&eval, 1);
            assert_eq!(run.trials.len() as u64, budget);
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = BasinHopping::default().tune(&eval, 1);
            assert_eq!(run.trials.len() as u64, budget);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = multimodal();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(200);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(200);
        assert_eq!(
            SimulatedAnnealing::default().tune(&e1, 9),
            SimulatedAnnealing::default().tune(&e2, 9)
        );
    }
}
