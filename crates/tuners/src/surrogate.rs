//! Surrogate-model tuner: sequential model-based optimization with a GBDT
//! surrogate (the SMAC/Optuna family the paper's interface targets).
//!
//! Ask/tell form: warm-up draws batch freely; each model step either
//! explores (a single ε-greedy random candidate) or scores the random
//! pool once and asks its top `batch` distinct predictions — the
//! q-greedy batched SMBO generalization, which collapses to the exact
//! historical argmin at `batch = 1`.

use bat_core::{Evaluator, TuningRun};
use bat_ml::{Dataset, Gbdt, GbdtParams, TreeParams};
use bat_space::ConfigSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{decode_features, new_run, ordinal, record_eval, Recorded, Tuner};

/// SMBO loop: random warm-up, then repeatedly (1) fit a GBDT surrogate on
/// all successful observations, (2) score a random candidate pool, (3)
/// evaluate the candidate(s) with the best predicted objective (ties broken
/// toward unseen configurations).
#[derive(Debug, Clone, Copy)]
pub struct SurrogateTuner {
    /// Random evaluations before the first model fit.
    pub warmup: usize,
    /// Candidate pool size per iteration.
    pub pool: usize,
    /// Surrogate refit interval (iterations).
    pub refit_every: usize,
    /// Exploration probability: with this chance, evaluate a random
    /// candidate instead of the incumbent-predicted best.
    pub epsilon: f64,
}

impl Default for SurrogateTuner {
    fn default() -> Self {
        SurrogateTuner {
            warmup: 20,
            pool: 200,
            refit_every: 5,
            epsilon: 0.1,
        }
    }
}

struct SurrogateStep<'a> {
    cfg: &'a SurrogateTuner,
    space: &'a ConfigSpace,
    rng: StdRng,
    seed: u64,
    card: u64,
    feature_names: Vec<String>,
    obs_x: Vec<Vec<f64>>,
    obs_y: Vec<f64>,
    model: Option<Gbdt>,
    since_refit: usize,
    warmup_left: usize,
}

impl SurrogateStep<'_> {
    fn refit_if_due(&mut self) {
        if self.since_refit >= self.cfg.refit_every {
            let data = Dataset::new(&self.obs_x, self.obs_y.clone(), self.feature_names.clone());
            self.model = Some(Gbdt::fit(
                &data,
                &GbdtParams {
                    n_trees: 60,
                    learning_rate: 0.15,
                    tree: TreeParams {
                        max_depth: 5,
                        min_samples_leaf: 2,
                        ..TreeParams::default()
                    },
                    subsample: 0.9,
                    seed: self.seed ^ 0x5eed,
                },
            ));
            self.since_refit = 0;
        }
    }
}

impl StepTuner for SurrogateStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.warmup_left > 0 {
            let want = self.warmup_left.min(ctx.batch);
            self.warmup_left -= want;
            return (0..want)
                .map(|_| self.rng.random_range(0..self.card))
                .collect();
        }
        // ε-greedy exploration (one candidate, like one classic iteration).
        if self.rng.random_bool(self.cfg.epsilon) || self.obs_x.len() < 2 {
            return vec![self.rng.random_range(0..self.card)];
        }
        self.refit_if_due();
        let model = self.model.as_ref().expect("fitted above");
        // Score the random pool once; ask the top `batch` distinct
        // predictions (stable order, so `batch = 1` is the classic
        // first-strict-minimum argmin).
        let d = self.space.num_params();
        let mut cfg = vec![0i64; d];
        let mut features = vec![0.0f64; d];
        let mut scored: Vec<(f64, u64)> = Vec::with_capacity(self.cfg.pool);
        for _ in 0..self.cfg.pool {
            let pos = ordinal::random_positions(self.space, &mut self.rng);
            let idx = ordinal::index_of(self.space, &pos);
            decode_features(self.space, idx, &mut cfg, &mut features);
            scored.push((model.predict(&features), idx));
        }
        crate::step::take_top_distinct(scored, ctx.batch, true)
    }

    fn tell(&mut self, results: &[Told]) {
        for r in results {
            if let Some(v) = r.value() {
                let config = self.space.config_at(r.index);
                self.obs_x.push(config.iter().map(|&x| x as f64).collect());
                self.obs_y.push(v.max(1e-12).ln());
            }
        }
        // One iteration's worth of staleness per step, regardless of batch
        // width (the refit cadence is measured in steps; during warm-up the
        // counter saturates at MAX, forcing the first fit — as classically).
        self.since_refit = self.since_refit.saturating_add(1);
    }
}

impl SurrogateTuner {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();
        let feature_names: Vec<String> = space.names().to_vec();

        // Observations: (config as f64 features, log time).
        let mut obs_x: Vec<Vec<f64>> = Vec::new();
        let mut obs_y: Vec<f64> = Vec::new();
        let record = |run: &mut TuningRun,
                      obs_x: &mut Vec<Vec<f64>>,
                      obs_y: &mut Vec<f64>,
                      idx: u64|
         -> Option<()> {
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(()),
                Recorded::Ok(v) => {
                    let cfg = space.config_at(idx);
                    obs_x.push(cfg.iter().map(|&x| x as f64).collect());
                    obs_y.push(v.max(1e-12).ln());
                    Some(())
                }
            }
        };

        // Warm-up.
        for _ in 0..self.warmup {
            let idx = rng.random_range(0..card);
            if record(&mut run, &mut obs_x, &mut obs_y, idx).is_none() {
                return run;
            }
        }

        let mut model: Option<Gbdt> = None;
        let mut since_refit = usize::MAX; // force initial fit
        while eval.has_budget() {
            // ε-greedy exploration.
            if rng.random_bool(self.epsilon) || obs_x.len() < 2 {
                let idx = rng.random_range(0..card);
                if record(&mut run, &mut obs_x, &mut obs_y, idx).is_none() {
                    break;
                }
                since_refit = since_refit.saturating_add(1);
                continue;
            }
            if since_refit >= self.refit_every {
                let data = Dataset::new(&obs_x, obs_y.clone(), feature_names.clone());
                model = Some(Gbdt::fit(
                    &data,
                    &GbdtParams {
                        n_trees: 60,
                        learning_rate: 0.15,
                        tree: TreeParams {
                            max_depth: 5,
                            min_samples_leaf: 2,
                            ..TreeParams::default()
                        },
                        subsample: 0.9,
                        seed: seed ^ 0x5eed,
                    },
                ));
                since_refit = 0;
            }
            let m = model.as_ref().expect("fitted above");
            // Score a random candidate pool; pick the best prediction.
            // Decode/featurize through reusable scratch buffers — this loop
            // runs `pool` times per iteration.
            let mut best_idx = None;
            let mut best_pred = f64::INFINITY;
            let d = space.num_params();
            let mut cfg = vec![0i64; d];
            let mut features = vec![0.0f64; d];
            for _ in 0..self.pool {
                let pos = ordinal::random_positions(space, &mut rng);
                let idx = ordinal::index_of(space, &pos);
                decode_features(space, idx, &mut cfg, &mut features);
                let pred = m.predict(&features);
                if pred < best_pred {
                    best_pred = pred;
                    best_idx = Some(idx);
                }
            }
            let idx = best_idx.expect("pool is non-empty");
            if record(&mut run, &mut obs_x, &mut obs_y, idx).is_none() {
                break;
            }
            since_refit += 1;
        }
        run
    }
}

impl Tuner for SurrogateTuner {
    fn name(&self) -> &str {
        "gbdt-surrogate"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(SurrogateStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            seed,
            card: space.cardinality(),
            feature_names: space.names().to_vec(),
            obs_x: Vec::new(),
            obs_y: Vec::new(),
            model: None,
            since_refit: usize::MAX,
            warmup_left: self.warmup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        // Smooth multiplicative landscape: surrogates excel here.
        let space = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8, 16, 32]))
            .param(Param::new("b", vec![1, 2, 4, 8, 16, 32]))
            .param(Param::int_range("c", 0, 9))
            .build()
            .unwrap();
        SyntheticProblem::new("ridge", "sim", space, |v| {
            let a = v[0] as f64;
            let b = v[1] as f64;
            let c = v[2] as f64;
            Ok((a / 8.0 - 1.0).powi(2) + (b / 8.0 - 1.0).powi(2) + 0.3 * (c - 4.0).powi(2) + 0.5)
        })
    }

    #[test]
    fn surrogate_finds_optimum() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(150);
        let run = SurrogateTuner::default().tune(&eval, 2);
        let best = run.best().unwrap();
        assert_eq!(best.config, vec![8, 8, 4], "best {:?}", best.config);
    }

    #[test]
    fn surrogate_beats_random_at_equal_budget() {
        let p = problem();
        let budget = 80;
        let mut sur_wins = 0;
        for seed in 0..5 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let s = SurrogateTuner::default()
                .tune(&e1, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            let r = crate::random::RandomSearch
                .tune(&e2, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            if s <= r {
                sur_wins += 1;
            }
        }
        assert!(sur_wins >= 3, "surrogate won only {sur_wins}/5");
    }

    #[test]
    fn budget_respected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(60);
        let run = SurrogateTuner::default().tune(&eval, 0);
        assert_eq!(run.trials.len(), 60);
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = problem();
        let t = SurrogateTuner::default();
        for seed in 0..3 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(70);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(70);
            assert_eq!(t.tune(&e1, seed), t.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_smbo_proposes_distinct_candidates_and_converges() {
        let p = problem();
        let protocol = Protocol::noiseless().with_batch(8);
        let eval = Evaluator::with_protocol(&p, protocol).with_budget(150);
        let run = SurrogateTuner::default().tune(&eval, 2);
        assert_eq!(run.trials.len(), 150);
        assert!(run.best().unwrap().time_ms().unwrap() <= 0.6);
    }
}
