//! Differential evolution (rand/1/bin) on the ordinal embedding.

use bat_core::{Evaluator, TuningRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// DE/rand/1/bin adapted to discrete spaces: difference vectors act on
/// continuous ordinal coordinates, trial vectors are rounded for
/// evaluation, and selection is greedy per slot.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialEvolution {
    /// Population size (≥ 4).
    pub population: usize,
    /// Differential weight F.
    pub f: f64,
    /// Crossover rate CR.
    pub cr: f64,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population: 20,
            f: 0.8,
            cr: 0.9,
        }
    }
}

impl Tuner for DifferentialEvolution {
    fn name(&self) -> &str {
        "differential-evolution"
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        assert!(self.population >= 4, "DE needs at least 4 individuals");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let dims = space.num_params();

        let evaluate = |run: &mut TuningRun, x: &[f64]| -> Option<f64> {
            let pos: Vec<usize> = (0..dims).map(|i| ordinal::clamp(space, i, x[i])).collect();
            let idx = ordinal::index_of(space, &pos);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(f64::INFINITY),
                Recorded::Ok(v) => Some(v),
            }
        };

        // Initialize population.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(self.population);
        let mut vals: Vec<f64> = Vec::with_capacity(self.population);
        for _ in 0..self.population {
            let x: Vec<f64> = (0..dims)
                .map(|i| rng.random_range(0.0..space.params()[i].len() as f64 - 1e-9))
                .collect();
            let Some(v) = evaluate(&mut run, &x) else {
                return run;
            };
            xs.push(x);
            vals.push(v);
        }

        'outer: loop {
            for target in 0..self.population {
                // Pick three distinct others.
                let mut pick = || loop {
                    let c = rng.random_range(0..self.population);
                    if c != target {
                        return c;
                    }
                };
                let (a, b, c) = (pick(), pick(), pick());
                let j_rand = rng.random_range(0..dims);
                let mut trial = xs[target].clone();
                for j in 0..dims {
                    if j == j_rand || rng.random_bool(self.cr) {
                        let span = space.params()[j].len() as f64;
                        trial[j] =
                            (xs[a][j] + self.f * (xs[b][j] - xs[c][j])).clamp(0.0, span - 1.0);
                    }
                }
                let Some(v) = evaluate(&mut run, &trial) else {
                    break 'outer;
                };
                if v <= vals[target] {
                    xs[target] = trial;
                    vals[target] = v;
                }
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 20))
            .param(Param::int_range("y", 0, 20))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl2", "sim", space, |c| {
            Ok(1.0 + ((c[0] - 4) * (c[0] - 4) + (c[1] - 17) * (c[1] - 17)) as f64)
        })
    }

    #[test]
    fn de_converges() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(800);
        let run = DifferentialEvolution::default().tune(&eval, 3);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }

    #[test]
    fn budget_respected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(55);
        let run = DifferentialEvolution::default().tune(&eval, 1);
        assert_eq!(run.trials.len(), 55);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_population_rejected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(10);
        let _ = DifferentialEvolution {
            population: 3,
            ..DifferentialEvolution::default()
        }
        .tune(&eval, 0);
    }
}
