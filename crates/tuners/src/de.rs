//! Differential evolution (rand/1/bin) on the ordinal embedding.
//!
//! Ask/tell form: initialization batches freely (its draws never depend on
//! measurements); the evolution phase builds up to `batch` trial vectors
//! against consecutive targets from the current population snapshot and
//! applies greedy selection in told order. `batch = 1` replays the
//! historical loop bit-exactly; `batch = population` is synchronous DE.

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// DE/rand/1/bin adapted to discrete spaces: difference vectors act on
/// continuous ordinal coordinates, trial vectors are rounded for
/// evaluation, and selection is greedy per slot.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialEvolution {
    /// Population size (≥ 4).
    pub population: usize,
    /// Differential weight F.
    pub f: f64,
    /// Crossover rate CR.
    pub cr: f64,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population: 20,
            f: 0.8,
            cr: 0.9,
        }
    }
}

struct DeStep<'a> {
    cfg: &'a DifferentialEvolution,
    space: &'a ConfigSpace,
    rng: StdRng,
    xs: Vec<Vec<f64>>,
    vals: Vec<f64>,
    /// Next target slot of the cyclic evolution pass.
    target: usize,
    /// `(target, trial_vector)` pairs asked but not yet told.
    pending: Vec<(usize, Vec<f64>)>,
    /// Genomes of the initial population asked but not yet told.
    init_pending: Vec<Vec<f64>>,
}

impl DeStep<'_> {
    fn random_genome(&mut self) -> Vec<f64> {
        (0..self.space.num_params())
            .map(|i| {
                self.rng
                    .random_range(0.0..self.space.params()[i].len() as f64 - 1e-9)
            })
            .collect()
    }

    fn trial_for(&mut self, target: usize) -> Vec<f64> {
        let dims = self.space.num_params();
        let population = self.cfg.population;
        let mut pick = || loop {
            let c = self.rng.random_range(0..population);
            if c != target {
                return c;
            }
        };
        let (a, b, c) = (pick(), pick(), pick());
        let j_rand = self.rng.random_range(0..dims);
        let mut trial = self.xs[target].clone();
        for (j, slot) in trial.iter_mut().enumerate() {
            if j == j_rand || self.rng.random_bool(self.cfg.cr) {
                let span = self.space.params()[j].len() as f64;
                *slot = (self.xs[a][j] + self.cfg.f * (self.xs[b][j] - self.xs[c][j]))
                    .clamp(0.0, span - 1.0);
            }
        }
        trial
    }
}

impl StepTuner for DeStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.xs.len() < self.cfg.population {
            let want = (self.cfg.population - self.xs.len()).min(ctx.batch);
            self.init_pending = (0..want).map(|_| self.random_genome()).collect();
            return self
                .init_pending
                .iter()
                .map(|x| ordinal::index_of_continuous(self.space, x))
                .collect();
        }
        self.pending.clear();
        for _ in 0..ctx.batch {
            let target = self.target;
            self.target = (self.target + 1) % self.cfg.population;
            let trial = self.trial_for(target);
            self.pending.push((target, trial));
        }
        self.pending
            .iter()
            .map(|(_, x)| ordinal::index_of_continuous(self.space, x))
            .collect()
    }

    fn tell(&mut self, results: &[Told]) {
        if !self.init_pending.is_empty() {
            for (x, r) in self.init_pending.drain(..).zip(results) {
                self.xs.push(x);
                self.vals.push(r.value().unwrap_or(f64::INFINITY));
            }
            return;
        }
        for ((target, trial), r) in self.pending.drain(..).zip(results) {
            let v = r.value().unwrap_or(f64::INFINITY);
            if v <= self.vals[target] {
                self.xs[target] = trial;
                self.vals[target] = v;
            }
        }
    }
}

impl DifferentialEvolution {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        assert!(self.population >= 4, "DE needs at least 4 individuals");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let dims = space.num_params();

        let evaluate = |run: &mut TuningRun, x: &[f64]| -> Option<f64> {
            let pos: Vec<usize> = (0..dims).map(|i| ordinal::clamp(space, i, x[i])).collect();
            let idx = ordinal::index_of(space, &pos);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(f64::INFINITY),
                Recorded::Ok(v) => Some(v),
            }
        };

        // Initialize population.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(self.population);
        let mut vals: Vec<f64> = Vec::with_capacity(self.population);
        for _ in 0..self.population {
            let x: Vec<f64> = (0..dims)
                .map(|i| rng.random_range(0.0..space.params()[i].len() as f64 - 1e-9))
                .collect();
            let Some(v) = evaluate(&mut run, &x) else {
                return run;
            };
            xs.push(x);
            vals.push(v);
        }

        'outer: loop {
            for target in 0..self.population {
                // Pick three distinct others.
                let mut pick = || loop {
                    let c = rng.random_range(0..self.population);
                    if c != target {
                        return c;
                    }
                };
                let (a, b, c) = (pick(), pick(), pick());
                let j_rand = rng.random_range(0..dims);
                let mut trial = xs[target].clone();
                for j in 0..dims {
                    if j == j_rand || rng.random_bool(self.cr) {
                        let span = space.params()[j].len() as f64;
                        trial[j] =
                            (xs[a][j] + self.f * (xs[b][j] - xs[c][j])).clamp(0.0, span - 1.0);
                    }
                }
                let Some(v) = evaluate(&mut run, &trial) else {
                    break 'outer;
                };
                if v <= vals[target] {
                    xs[target] = trial;
                    vals[target] = v;
                }
            }
        }
        run
    }
}

impl Tuner for DifferentialEvolution {
    fn name(&self) -> &str {
        "differential-evolution"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        assert!(self.population >= 4, "DE needs at least 4 individuals");
        Box::new(DeStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            xs: Vec::with_capacity(self.population),
            vals: Vec::with_capacity(self.population),
            target: 0,
            pending: Vec::new(),
            init_pending: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 20))
            .param(Param::int_range("y", 0, 20))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl2", "sim", space, |c| {
            Ok(1.0 + ((c[0] - 4) * (c[0] - 4) + (c[1] - 17) * (c[1] - 17)) as f64)
        })
    }

    #[test]
    fn de_converges() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(800);
        let run = DifferentialEvolution::default().tune(&eval, 3);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }

    #[test]
    fn budget_respected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(55);
        let run = DifferentialEvolution::default().tune(&eval, 1);
        assert_eq!(run.trials.len(), 55);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_population_rejected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(10);
        let _ = DifferentialEvolution {
            population: 3,
            ..DifferentialEvolution::default()
        }
        .tune(&eval, 0);
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = problem();
        let de = DifferentialEvolution::default();
        for seed in 0..6 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(180);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(180);
            assert_eq!(de.tune(&e1, seed), de.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn synchronous_generations_converge() {
        let p = problem();
        let protocol = Protocol::noiseless().with_batch(20);
        let eval = Evaluator::with_protocol(&p, protocol).with_budget(800);
        let run = DifferentialEvolution::default().tune(&eval, 3);
        assert_eq!(run.trials.len(), 800);
        assert!(run.best().unwrap().time_ms().unwrap() <= 2.0);
    }
}
