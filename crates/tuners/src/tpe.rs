//! Tree-structured Parzen Estimator — the default sampler of Optuna, one
//! of the four tuning frameworks the paper's shared interface integrates.
//!
//! TPE models *densities over configurations* instead of the objective
//! itself: observations are split into a "good" set (best γ-quantile) and a
//! "bad" set, per-parameter categorical densities `l(x)` and `g(x)` are
//! estimated from each (with a uniform Dirichlet prior as smoothing), and
//! candidates drawn from `l` are ranked by the likelihood ratio
//! `l(x)/g(x)`. Because BAT parameters are all discrete, the Parzen
//! estimator reduces to smoothed categorical histograms — exactly how
//! Optuna treats `suggest_categorical` dimensions.

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// TPE tuner settings.
#[derive(Debug, Clone, Copy)]
pub struct Tpe {
    /// Random evaluations before the first model-guided proposal
    /// (Optuna's `n_startup_trials`).
    pub warmup: usize,
    /// Quantile of observations treated as "good" (Optuna's γ).
    pub gamma: f64,
    /// Candidates drawn from `l(x)` per iteration (`n_ei_candidates`).
    pub candidates: usize,
    /// Dirichlet prior weight added to every category.
    pub prior_weight: f64,
    /// Check the space's restriction expressions *statically* before
    /// proposing a candidate (free of measurement budget). This is how
    /// the real tuner stack behaves: BAT's configuration-space handler
    /// rejects restricted suggestions before anything is compiled or
    /// launched. Disable to study the unconstrained sampler.
    pub respect_restrictions: bool,
}

impl Default for Tpe {
    fn default() -> Self {
        Tpe {
            warmup: 10,
            gamma: 0.15,
            candidates: 24,
            prior_weight: 1.0,
            respect_restrictions: true,
        }
    }
}

/// Per-parameter smoothed categorical density.
struct CategoricalDensity {
    /// Probability per value position; sums to 1.
    probs: Vec<f64>,
}

impl CategoricalDensity {
    /// Estimate from the `dim`-th coordinate of `positions`, smoothing
    /// every category with `prior_weight / n_categories`.
    fn estimate(
        positions: &[Vec<usize>],
        dim: usize,
        n_categories: usize,
        prior_weight: f64,
    ) -> Self {
        let mut counts = vec![prior_weight / n_categories as f64; n_categories];
        for p in positions {
            counts[p[dim]] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        CategoricalDensity {
            probs: counts.into_iter().map(|c| c / total).collect(),
        }
    }

    fn log_prob(&self, category: usize) -> f64 {
        self.probs[category].ln()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u = rng.random_range(0.0..1.0);
        for (i, &p) in self.probs.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        self.probs.len() - 1
    }
}

/// The good/bad density pair over all parameters.
struct ParzenPair {
    good: Vec<CategoricalDensity>,
    bad: Vec<CategoricalDensity>,
}

impl ParzenPair {
    fn build(
        space: &ConfigSpace,
        observations: &[(Vec<usize>, f64)],
        gamma: f64,
        prior_weight: f64,
    ) -> Self {
        let mut order: Vec<usize> = (0..observations.len()).collect();
        order.sort_by(|&a, &b| observations[a].1.total_cmp(&observations[b].1));
        // Optuna-style split size: at least 1, at most n-1 so the bad set
        // is never empty.
        let n_good = ((gamma * observations.len() as f64).ceil() as usize)
            .clamp(1, observations.len().saturating_sub(1).max(1));
        let good_pos: Vec<Vec<usize>> = order[..n_good]
            .iter()
            .map(|&i| observations[i].0.clone())
            .collect();
        let bad_pos: Vec<Vec<usize>> = order[n_good..]
            .iter()
            .map(|&i| observations[i].0.clone())
            .collect();

        let build_set = |set: &[Vec<usize>]| -> Vec<CategoricalDensity> {
            space
                .params()
                .iter()
                .enumerate()
                .map(|(d, p)| CategoricalDensity::estimate(set, d, p.len(), prior_weight))
                .collect()
        };
        ParzenPair {
            good: build_set(&good_pos),
            bad: build_set(&bad_pos),
        }
    }

    /// `log l(x) − log g(x)` over all dimensions.
    fn log_ratio(&self, pos: &[usize]) -> f64 {
        pos.iter()
            .enumerate()
            .map(|(d, &c)| self.good[d].log_prob(c) - self.bad[d].log_prob(c))
            .sum()
    }

    /// Draw a position vector from `l(x)`.
    fn sample_good<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        self.good.iter().map(|d| d.sample(rng)).collect()
    }
}

struct TpeStep<'a> {
    cfg: &'a Tpe,
    space: &'a ConfigSpace,
    rng: StdRng,
    card: u64,
    /// (positions, log time); failures carry a penalty objective.
    observations: Vec<(Vec<usize>, f64)>,
    worst_seen: f64,
    warmup_left: usize,
    draw_scratch: Vec<i64>,
}

impl TpeStep<'_> {
    /// Uniform draw, rejection-sampled against the static restrictions
    /// when `respect_restrictions` (bounded attempts: heavily constrained
    /// spaces fall back to an unfiltered draw).
    fn draw(&mut self) -> u64 {
        if self.cfg.respect_restrictions {
            for _ in 0..64 {
                let idx = self.rng.random_range(0..self.card);
                if self.space.is_valid_index_into(idx, &mut self.draw_scratch) {
                    return idx;
                }
            }
        }
        self.rng.random_range(0..self.card)
    }
}

impl StepTuner for TpeStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.warmup_left > 0 {
            let want = self.warmup_left.min(ctx.batch);
            self.warmup_left -= want;
            return (0..want).map(|_| self.draw()).collect();
        }
        if self.observations.len() < 2 {
            return vec![self.draw()];
        }
        let pair = ParzenPair::build(
            self.space,
            &self.observations,
            self.cfg.gamma,
            self.cfg.prior_weight,
        );
        // Sample the candidate set once; ask the top `batch` distinct
        // likelihood ratios (stable order, so `batch = 1` is the classic
        // first-strict-maximum pick).
        let mut sampled: Vec<(f64, Vec<usize>)> = Vec::new();
        let mut kept = 0usize;
        let mut attempts = 0usize;
        while kept < self.cfg.candidates && attempts < self.cfg.candidates * 10 {
            attempts += 1;
            let pos = pair.sample_good(&mut self.rng);
            if self.cfg.respect_restrictions {
                let cfg: Vec<i64> = pos
                    .iter()
                    .enumerate()
                    .map(|(d, &p)| self.space.params()[d].value(p))
                    .collect();
                if !self.space.is_valid(&cfg) {
                    continue;
                }
            }
            kept += 1;
            let r = pair.log_ratio(&pos);
            sampled.push((r, pos));
        }
        if sampled.is_empty() {
            // All sampled candidates were restricted: evaluate an
            // unfiltered draw rather than stalling.
            return vec![self.draw()];
        }
        let scored: Vec<(f64, u64)> = sampled
            .into_iter()
            .map(|(r, pos)| (r, ordinal::index_of(self.space, &pos)))
            .collect();
        crate::step::take_top_distinct(scored, ctx.batch, false)
    }

    fn tell(&mut self, results: &[Told]) {
        for r in results {
            let pos = ordinal::positions_of(self.space, r.index);
            match r.value() {
                None => {
                    let penalty = if self.worst_seen.is_finite() {
                        self.worst_seen + 1.0
                    } else {
                        1e3
                    };
                    self.observations.push((pos, penalty));
                }
                Some(v) => {
                    let logv = v.max(1e-12).ln();
                    self.worst_seen = self.worst_seen.max(logv);
                    self.observations.push((pos, logv));
                }
            }
        }
    }
}

impl Tuner for Tpe {
    fn name(&self) -> &str {
        "tpe"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(TpeStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
            observations: Vec::new(),
            worst_seen: f64::NEG_INFINITY,
            warmup_left: self.warmup,
            draw_scratch: vec![0i64; space.num_params()],
        })
    }
}

impl Tpe {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();

        // (positions, log time); failures are kept with a penalty objective
        // so TPE learns to avoid invalid regions (Optuna would receive a
        // pruned/failed trial there).
        let mut observations: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut worst_seen = f64::NEG_INFINITY;
        let record = |run: &mut TuningRun,
                      observations: &mut Vec<(Vec<usize>, f64)>,
                      worst_seen: &mut f64,
                      idx: u64|
         -> Option<()> {
            let pos = ordinal::positions_of(space, idx);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => {
                    let penalty = if worst_seen.is_finite() {
                        *worst_seen + 1.0
                    } else {
                        1e3
                    };
                    observations.push((pos, penalty));
                    Some(())
                }
                Recorded::Ok(v) => {
                    let logv = v.max(1e-12).ln();
                    *worst_seen = worst_seen.max(logv);
                    observations.push((pos, logv));
                    Some(())
                }
            }
        };

        // Uniform draw, rejection-sampled against the static restrictions
        // when `respect_restrictions` (bounded attempts: heavily
        // constrained spaces fall back to an unfiltered draw).
        let mut draw_scratch = vec![0i64; space.num_params()];
        let mut draw = |rng: &mut StdRng| -> u64 {
            if self.respect_restrictions {
                for _ in 0..64 {
                    let idx = rng.random_range(0..card);
                    if space.is_valid_index_into(idx, &mut draw_scratch) {
                        return idx;
                    }
                }
            }
            rng.random_range(0..card)
        };

        for _ in 0..self.warmup {
            let idx = draw(&mut rng);
            if record(&mut run, &mut observations, &mut worst_seen, idx).is_none() {
                return run;
            }
        }

        while eval.has_budget() {
            if observations.len() < 2 {
                let idx = draw(&mut rng);
                if record(&mut run, &mut observations, &mut worst_seen, idx).is_none() {
                    return run;
                }
                continue;
            }
            let pair = ParzenPair::build(space, &observations, self.gamma, self.prior_weight);
            let mut best_pos: Option<Vec<usize>> = None;
            let mut best_ratio = f64::NEG_INFINITY;
            let mut kept = 0usize;
            let mut attempts = 0usize;
            while kept < self.candidates && attempts < self.candidates * 10 {
                attempts += 1;
                let pos = pair.sample_good(&mut rng);
                if self.respect_restrictions {
                    let cfg: Vec<i64> = pos
                        .iter()
                        .enumerate()
                        .map(|(d, &p)| space.params()[d].value(p))
                        .collect();
                    if !space.is_valid(&cfg) {
                        continue;
                    }
                }
                kept += 1;
                let r = pair.log_ratio(&pos);
                if r > best_ratio {
                    best_ratio = r;
                    best_pos = Some(pos);
                }
            }
            // All sampled candidates were restricted: evaluate an
            // unfiltered draw rather than stalling.
            let idx = match best_pos {
                Some(pos) => ordinal::index_of(space, &pos),
                None => draw(&mut rng),
            };
            if record(&mut run, &mut observations, &mut worst_seen, idx).is_none() {
                return run;
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn separable_problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        // Separable: exactly TPE's modelling assumption (independent dims).
        // Large enough (20³ = 8000) that random search cannot keep up.
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 19))
            .param(Param::int_range("y", 0, 19))
            .param(Param::int_range("z", 0, 19))
            .build()
            .unwrap();
        SyntheticProblem::new("separable", "sim", space, |v| {
            Ok(1.0
                + (v[0] - 3).unsigned_abs() as f64
                + (v[1] - 16).unsigned_abs() as f64
                + (v[2] - 9).unsigned_abs() as f64)
        })
    }

    #[test]
    fn density_estimation_is_smoothed_and_normalized() {
        let positions = vec![vec![0], vec![0], vec![2]];
        let d = CategoricalDensity::estimate(&positions, 0, 4, 1.0);
        let sum: f64 = d.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Category 1 was never seen but has prior mass.
        assert!(d.probs[1] > 0.0);
        // Category 0 (seen twice) dominates.
        assert!(d.probs[0] > d.probs[2]);
        assert!(d.probs[2] > d.probs[1]);
    }

    #[test]
    fn sampling_follows_density() {
        let positions = vec![vec![3]; 50];
        let d = CategoricalDensity::estimate(&positions, 0, 4, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let hits = (0..1000).filter(|_| d.sample(&mut rng) == 3).count();
        assert!(hits > 900, "sampled category 3 only {hits}/1000 times");
    }

    #[test]
    fn good_bad_split_never_empties_either_set() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 3))
            .build()
            .unwrap();
        for n in [2usize, 3, 10, 100] {
            let obs: Vec<(Vec<usize>, f64)> = (0..n).map(|i| (vec![i % 4], i as f64)).collect();
            let pair = ParzenPair::build(&space, &obs, 0.15, 1.0);
            // Both densities exist and are proper.
            assert!((pair.good[0].probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((pair.bad[0].probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_ratio_prefers_good_region() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        // Low x is good (objective = x).
        let obs: Vec<(Vec<usize>, f64)> = (0..10).map(|i| (vec![i], i as f64)).collect();
        let pair = ParzenPair::build(&space, &obs, 0.3, 1.0);
        assert!(pair.log_ratio(&[0]) > pair.log_ratio(&[9]));
    }

    #[test]
    fn tpe_finds_optimum_on_separable_landscape() {
        let p = separable_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
        let run = Tpe::default().tune(&eval, 5);
        let best = run.best().unwrap();
        assert!(
            best.time_ms().unwrap() <= 4.0,
            "best {:?} at {}",
            best.config,
            best.time_ms().unwrap()
        );
    }

    #[test]
    fn tpe_beats_random_at_equal_budget() {
        let p = separable_problem();
        let budget = 120;
        let mut wins = 0;
        for seed in 0..8 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let t = Tpe::default()
                .tune(&e1, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            let r = crate::random::RandomSearch
                .tune(&e2, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            if t <= r {
                wins += 1;
            }
        }
        assert!(wins >= 6, "TPE won only {wins}/8");
    }

    #[test]
    fn budget_is_respected_exactly() {
        let p = separable_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(50);
        let run = Tpe::default().tune(&eval, 0);
        assert_eq!(run.trials.len(), 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = separable_problem();
        let idx = |seed| {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(40);
            Tpe::default()
                .tune(&eval, seed)
                .trials
                .iter()
                .map(|t| t.index)
                .collect::<Vec<_>>()
        };
        assert_eq!(idx(4), idx(4));
        assert_ne!(idx(4), idx(5));
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = separable_problem();
        let t = Tpe::default();
        for seed in 0..4 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(80);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(80);
            assert_eq!(t.tune(&e1, seed), t.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_tpe_converges() {
        let p = separable_problem();
        let protocol = Protocol::noiseless().with_batch(8);
        let eval = Evaluator::with_protocol(&p, protocol).with_budget(300);
        let run = Tpe::default().tune(&eval, 5);
        assert_eq!(run.trials.len(), 300);
        assert!(run.best().unwrap().time_ms().unwrap() <= 6.0);
    }
}
