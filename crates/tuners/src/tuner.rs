//! The tuner-side of the shared problem interface.

use bat_core::{Error, EvalBackend, EvalFailure, Evaluator, Measurement, Trial, TuningRun};
use bat_space::ConfigSpace;
use rand::Rng;

/// An optimization algorithm that searches a configuration space through an
/// [`Evaluator`].
///
/// Tuners never touch the problem directly: all measurements flow through
/// the evaluator's protocol and budget, which is what makes comparisons
/// between algorithms fair (the paper's motivation for a shared interface).
///
/// Since the ask/tell refactor the search core is *push-based*: a tuner's
/// real implementation is the step session it opens in
/// [`Tuner::start`], and [`Tuner::tune`] is provided for every implementor
/// by the shared [`crate::drive`] loop — callers keep the familiar
/// pull-style entry point, the evaluation side owns batching.
///
/// `Send + Sync` is required so comparison harnesses can fan runs out over
/// threads; tuners are configuration-holding value types, so this costs
/// implementors nothing.
pub trait Tuner: Send + Sync {
    /// Algorithm name used in run records.
    fn name(&self) -> &str;

    /// Open a step-driven (ask/tell) search session over `space`, seeded
    /// with `seed`. The session borrows the space (and the tuner's own
    /// configuration) for its lifetime.
    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn crate::StepTuner + 'a>;

    /// Search until the backend's budget is exhausted (or the algorithm is
    /// done), over *any* [`EvalBackend`] — in-process, loopback or remote.
    /// Returns the complete trial history, or the backend's
    /// transport/session error.
    ///
    /// The default implementation runs [`Tuner::start`]'s session through
    /// the shared deterministic driver; with `Protocol::batch == 1` it is
    /// bit-identical to the historical per-tuner loops, and across backends
    /// it produces byte-identical trial histories for the same problem and
    /// protocol.
    fn try_tune(&self, backend: &dyn EvalBackend, seed: u64) -> Result<TuningRun, Error> {
        let mut session = self.start(backend.space(), seed);
        crate::step::try_drive(self.name(), session.as_mut(), backend, seed)
    }

    /// [`Tuner::try_tune`] for the infallible in-process backend — the
    /// familiar pull-style entry point.
    ///
    /// # Panics
    ///
    /// Panics if the backend reports a transport-level error (impossible
    /// for [`Evaluator`]).
    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        self.try_tune(eval, seed)
            .expect("in-process evaluation cannot fail")
    }
}

/// Outcome of one recorded evaluation inside a tuner loop.
pub enum Recorded {
    /// Budget exhausted: stop the tuner.
    Exhausted,
    /// Configuration failed (restricted or launch failure).
    Failed,
    /// Successful measurement.
    Ok(f64),
}

/// Decode `index` into `cfg` and featurize it as f64s into `features`,
/// through caller-owned scratch — the surrogate tuners' candidate-scoring
/// inner loop, shared so the featurization cannot drift between them.
pub(crate) fn decode_features(
    space: &ConfigSpace,
    index: u64,
    cfg: &mut [i64],
    features: &mut [f64],
) {
    space.decode_into(index, cfg);
    for (f, &v) in features.iter_mut().zip(cfg.iter()) {
        *f = v as f64;
    }
}

/// Evaluate `index`, append a [`Trial`] to `run`, and return the full
/// outcome — `None` when the budget is exhausted. The single
/// trial-recording protocol every tuner shares; multi-objective tuners use
/// this form directly because they need more than the scalar objective.
pub fn record_eval2(
    eval: &Evaluator<'_>,
    run: &mut TuningRun,
    index: u64,
) -> Option<Result<Measurement, EvalFailure>> {
    let outcome = eval.evaluate_index(index)?;
    let config = eval.problem().space().config_at(index);
    let trial = Trial {
        eval: run.trials.len() as u64 + 1,
        index,
        config,
        outcome: outcome.clone(),
    };
    run.push(trial);
    Some(outcome)
}

/// Evaluate `index`, append a [`Trial`] to `run`, and classify the outcome.
pub fn record_eval(eval: &Evaluator<'_>, run: &mut TuningRun, index: u64) -> Recorded {
    match record_eval2(eval, run, index) {
        None => Recorded::Exhausted,
        Some(Ok(m)) => Recorded::Ok(m.time_ms),
        Some(Err(_)) => Recorded::Failed,
    }
}

/// Start an empty [`TuningRun`] for `backend` under `tuner_name`.
pub fn new_run(backend: &dyn EvalBackend, tuner_name: &str, seed: u64) -> TuningRun {
    TuningRun::new(
        backend.problem_name().to_string(),
        backend.platform().to_string(),
        tuner_name.to_string(),
        seed,
    )
}

/// Ordinal encoding helpers: tuners operate on per-parameter *positions*
/// (indices into each parameter's ordered value list), which makes
/// crossover, mutation and velocity updates uniform across benchmarks.
pub mod ordinal {
    use super::*;

    /// Random position vector.
    pub fn random_positions<R: Rng + ?Sized>(space: &ConfigSpace, rng: &mut R) -> Vec<usize> {
        space
            .params()
            .iter()
            .map(|p| rng.random_range(0..p.len()))
            .collect()
    }

    /// Dense index of a position vector.
    pub fn index_of(space: &ConfigSpace, pos: &[usize]) -> u64 {
        let mut idx = 0u64;
        for (i, &p) in pos.iter().enumerate() {
            debug_assert!(p < space.params()[i].len());
            idx += (p as u64) * space.stride(i);
        }
        idx
    }

    /// Position vector of a dense index.
    pub fn positions_of(space: &ConfigSpace, mut index: u64) -> Vec<usize> {
        let mut pos = vec![0usize; space.num_params()];
        for (i, p) in pos.iter_mut().enumerate() {
            *p = (index / space.stride(i)) as usize;
            index %= space.stride(i);
        }
        pos
    }

    /// Mutate one random coordinate to a different random position.
    pub fn mutate_one<R: Rng + ?Sized>(space: &ConfigSpace, pos: &mut [usize], rng: &mut R) {
        let i = rng.random_range(0..pos.len());
        let len = space.params()[i].len();
        if len <= 1 {
            return;
        }
        let mut alt = rng.random_range(0..len - 1);
        if alt >= pos[i] {
            alt += 1;
        }
        pos[i] = alt;
    }

    /// Clamp a continuous coordinate into a valid position.
    pub fn clamp(space: &ConfigSpace, i: usize, v: f64) -> usize {
        let len = space.params()[i].len();
        (v.round().max(0.0) as usize).min(len - 1)
    }

    /// Dense index of a continuous genome: every coordinate rounded and
    /// clamped into its parameter's position range (the shared embedding
    /// of the continuous-relaxation tuners, DE and PSO).
    pub fn index_of_continuous(space: &ConfigSpace, x: &[f64]) -> u64 {
        let pos: Vec<usize> = (0..space.num_params())
            .map(|i| clamp(space, i, x[i]))
            .collect();
        index_of(space, &pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8]))
            .param(Param::new("b", vec![0, 1, 2]))
            .param(Param::boolean("c"))
            .build()
            .unwrap()
    }

    #[test]
    fn ordinal_round_trip() {
        let s = space();
        for idx in 0..s.cardinality() {
            let pos = ordinal::positions_of(&s, idx);
            assert_eq!(ordinal::index_of(&s, &pos), idx);
        }
    }

    #[test]
    fn mutate_changes_exactly_one_coordinate() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let pos = ordinal::random_positions(&s, &mut rng);
            let mut mutated = pos.clone();
            ordinal::mutate_one(&s, &mut mutated, &mut rng);
            let diff = pos.iter().zip(&mutated).filter(|(x, y)| x != y).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn clamp_respects_bounds() {
        let s = space();
        assert_eq!(ordinal::clamp(&s, 0, -3.0), 0);
        assert_eq!(ordinal::clamp(&s, 0, 99.0), 3);
        assert_eq!(ordinal::clamp(&s, 1, 1.4), 1);
    }
}
