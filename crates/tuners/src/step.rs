//! The ask/tell (step-driven) search protocol and its shared driver.
//!
//! Classic tuner loops *pull* measurements one at a time, which hard-wires
//! strictly serial evaluation into the comparison protocol. This module
//! inverts that control flow, the way CATBench's black-box interface does:
//! a [`StepTuner`] is a resumable state machine that **asks** for a batch
//! of candidate configurations and is later **told** their outcomes, while
//! the evaluation side — the shared [`drive`] loop plus
//! [`Evaluator::evaluate_batch`] — owns batching, measurement and budget
//! accounting.
//!
//! The driver is deterministic: candidates are evaluated in ask order
//! (fan-out happens inside `evaluate_batch`, which collects results in
//! order), trials are recorded in ask order, and the tuner's RNG only ever
//! advances inside `ask`/`tell`. With `Protocol::batch == 1` every ported
//! tuner reproduces its historical pull-loop bit-exactly (property-tested
//! against the retained `reference_tune` oracles); larger batches trade
//! per-candidate feedback for measurement parallelism — a new scenario
//! axis campaigns can sweep.

use bat_core::{Error, EvalBackend, EvalFailure, Measurement, Trial, TuningRun};

/// What the evaluation side offers for the current step.
#[derive(Debug, Clone, Copy)]
pub struct StepCtx {
    /// Maximum number of configurations measurable in one ask/tell round
    /// (the protocol's measurement parallelism; always ≥ 1). Tuners may
    /// ask fewer — sequential algorithms typically ask exactly one.
    pub batch: usize,
}

/// The outcome of one asked configuration, as reported to [`StepTuner::tell`].
#[derive(Debug, Clone)]
pub struct Told {
    /// The dense configuration index that was asked.
    pub index: u64,
    /// Its measurement (or why there is none).
    pub outcome: Result<Measurement, EvalFailure>,
}

impl Told {
    /// The scalar objective, when the evaluation succeeded.
    pub fn value(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|m| m.time_ms)
    }
}

/// A search algorithm in ask/tell form: a resumable state machine that
/// proposes candidate configurations and digests their outcomes.
///
/// Contract (enforced by [`drive`]):
///
/// * `ask` returns the next candidates to measure, at most `ctx.batch` of
///   them. An empty vector means the algorithm is finished (e.g.
///   exhaustive search ran out of configurations).
/// * `tell` receives one [`Told`] per asked index, in ask order — except
///   when the budget died mid-batch, in which case only the evaluated
///   prefix is told (the run is over either way).
/// * The driver alternates strictly: every `ask` is followed by exactly
///   one `tell` before the next `ask`.
pub trait StepTuner {
    /// Propose up to `ctx.batch` candidate configuration indices.
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64>;

    /// Digest the outcomes of the previous [`StepTuner::ask`].
    fn tell(&mut self, results: &[Told]);
}

/// Run a step-driven session to budget exhaustion under the suite's
/// measurement discipline, producing the same [`TuningRun`] a classic
/// pull-loop would.
///
/// This is the single search loop of the suite: every [`crate::Tuner`]'s
/// `tune` is this function applied to its [`crate::Tuner::start`] session,
/// so no caller ever constructs an evaluation loop by hand. It is generic
/// over the [`EvalBackend`] — in-process, loopback and remote evaluation
/// all run this exact loop, which is why their trial histories agree byte
/// for byte.
///
/// `Err` means the *backend* failed (transport, session); per-configuration
/// failures are ordinary [`Told`] outcomes.
pub fn try_drive(
    name: &str,
    session: &mut dyn StepTuner,
    backend: &dyn EvalBackend,
    seed: u64,
) -> Result<TuningRun, Error> {
    let space = backend.space();
    let mut run = crate::tuner::new_run(backend, name, seed);
    let ctx = StepCtx {
        batch: backend.protocol().batch(),
    };
    while backend.has_budget() {
        let asked = session.ask(&ctx);
        if asked.is_empty() {
            break;
        }
        debug_assert!(
            asked.len() <= ctx.batch,
            "session asked {} candidates, protocol batch is {}",
            asked.len(),
            ctx.batch
        );
        // One trace span per ask/tell round; inert (one atomic load) when
        // tracing is off. The batch span nests under it via the thread
        // stack.
        let mut step_span = bat_obs::trace::span("step");
        step_span.record_u64("asked", asked.len() as u64);
        let outcomes = backend.evaluate_batch(&asked)?;
        let evaluated = outcomes.len();
        step_span.record_u64("evaluated", evaluated as u64);
        drop(step_span);
        let mut told = Vec::with_capacity(evaluated);
        for (&index, outcome) in asked.iter().zip(outcomes) {
            run.push(Trial {
                eval: run.trials.len() as u64 + 1,
                index,
                config: space.config_at(index),
                outcome: outcome.clone(),
            });
            told.push(Told { index, outcome });
        }
        session.tell(&told);
        if evaluated < asked.len() {
            break; // budget died mid-batch
        }
    }
    Ok(run)
}

/// [`try_drive`] for backends that cannot fail — the in-process
/// [`Evaluator`](bat_core::Evaluator) (which coerces straight to
/// `&dyn EvalBackend`).
///
/// # Panics
///
/// Panics if the backend reports a transport-level error; use
/// [`try_drive`] with fallible (loopback/remote) backends.
pub fn drive(
    name: &str,
    session: &mut dyn StepTuner,
    backend: &dyn EvalBackend,
    seed: u64,
) -> TuningRun {
    try_drive(name, session, backend, seed).expect("in-process evaluation cannot fail")
}

/// Select up to `batch` distinct candidate indices from `(score, index)`
/// pairs — the shared top-of-pool pick of the model-based tuners
/// (GBDT/GP/TPE/SMAC). `minimize` orders by ascending score (prediction
/// objectives), otherwise descending (acquisition scores / likelihood
/// ratios). The sort is stable, so ties keep pool order and `batch = 1`
/// selects exactly the classic first-strict-extremum candidate — the
/// tie-break the reference oracles are property-tested against.
pub(crate) fn take_top_distinct(
    mut scored: Vec<(f64, u64)>,
    batch: usize,
    minimize: bool,
) -> Vec<u64> {
    if minimize {
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    } else {
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    }
    let mut out: Vec<u64> = Vec::with_capacity(batch);
    for (_, idx) in scored {
        if !out.contains(&idx) {
            out.push(idx);
            if out.len() >= batch {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    #[test]
    fn take_top_distinct_keeps_pool_order_on_ties_and_dedups() {
        let scored = vec![(2.0, 7), (1.0, 3), (1.0, 9), (1.0, 3), (0.5, 7)];
        // Minimizing: 0.5 first, then the tied 1.0s in pool order, 7 deduped.
        assert_eq!(take_top_distinct(scored.clone(), 3, true), vec![7, 3, 9]);
        // batch = 1 is the first strict minimum.
        assert_eq!(take_top_distinct(scored.clone(), 1, true), vec![7]);
        // Maximizing: 2.0 first.
        assert_eq!(take_top_distinct(scored, 2, false), vec![7, 3]);
        assert!(take_top_distinct(Vec::new(), 4, true).is_empty());
    }

    struct Counting {
        next: u64,
        card: u64,
        telled: Vec<usize>,
    }

    impl StepTuner for Counting {
        fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
            let end = (self.next + ctx.batch as u64).min(self.card);
            let out: Vec<u64> = (self.next..end).collect();
            self.next = end;
            out
        }
        fn tell(&mut self, results: &[Told]) {
            self.telled.push(results.len());
        }
    }

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 99))
            .build()
            .unwrap();
        SyntheticProblem::new("lin", "sim", space, |c| Ok(1.0 + c[0] as f64))
    }

    #[test]
    fn driver_records_trials_in_ask_order_and_respects_budget() {
        let p = problem();
        let eval =
            Evaluator::with_protocol(&p, Protocol::noiseless().with_batch(4)).with_budget(10);
        let mut s = Counting {
            next: 0,
            card: 100,
            telled: Vec::new(),
        };
        let run = drive("counting", &mut s, &eval, 0);
        assert_eq!(run.trials.len(), 10);
        let idx: Vec<u64> = run.trials.iter().map(|t| t.index).collect();
        assert_eq!(idx, (0..10).collect::<Vec<u64>>());
        // Three full batches of 4, then a truncated tell of 2.
        assert_eq!(s.telled, vec![4, 4, 2]);
        // Trial numbering is sequential.
        let evals: Vec<u64> = run.trials.iter().map(|t| t.eval).collect();
        assert_eq!(evals, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn driver_stops_when_the_session_is_done() {
        let p = problem();
        let eval =
            Evaluator::with_protocol(&p, Protocol::noiseless().with_batch(8)).with_budget(50);
        let mut s = Counting {
            next: 0,
            card: 5,
            telled: Vec::new(),
        };
        let run = drive("counting", &mut s, &eval, 0);
        assert_eq!(run.trials.len(), 5);
        assert_eq!(eval.evals_used(), 5);
    }
}
