//! Particle swarm optimization, discretized to ordinal positions.

use bat_core::{Evaluator, TuningRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// PSO over the ordinal embedding of the space: particles carry continuous
/// coordinates that are rounded/clamped to parameter positions for
/// evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ParticleSwarm {
    /// Number of particles.
    pub particles: usize,
    /// Inertia weight.
    pub inertia: f64,
    /// Cognitive (personal-best) acceleration.
    pub cognitive: f64,
    /// Social (global-best) acceleration.
    pub social: f64,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            particles: 15,
            inertia: 0.7,
            cognitive: 1.5,
            social: 1.5,
        }
    }
}

struct Particle {
    x: Vec<f64>,
    v: Vec<f64>,
    best_x: Vec<f64>,
    best_val: f64,
}

impl Tuner for ParticleSwarm {
    fn name(&self) -> &str {
        "particle-swarm"
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let dims = space.num_params();

        let evaluate = |run: &mut TuningRun, x: &[f64]| -> Option<f64> {
            let pos: Vec<usize> = (0..dims).map(|i| ordinal::clamp(space, i, x[i])).collect();
            let idx = ordinal::index_of(space, &pos);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(f64::INFINITY),
                Recorded::Ok(v) => Some(v),
            }
        };

        // Initialize swarm.
        let mut swarm: Vec<Particle> = Vec::with_capacity(self.particles);
        let mut g_best: Option<(Vec<f64>, f64)> = None;
        for _ in 0..self.particles {
            let x: Vec<f64> = (0..dims)
                .map(|i| rng.random_range(0.0..space.params()[i].len() as f64 - 1e-9))
                .collect();
            let v: Vec<f64> = (0..dims)
                .map(|i| {
                    let span = space.params()[i].len() as f64;
                    rng.random_range(-span / 4.0..span / 4.0)
                })
                .collect();
            let Some(val) = evaluate(&mut run, &x) else {
                return run;
            };
            if g_best.as_ref().is_none_or(|(_, gv)| val < *gv) {
                g_best = Some((x.clone(), val));
            }
            swarm.push(Particle {
                best_x: x.clone(),
                best_val: val,
                x,
                v,
            });
        }

        'outer: loop {
            for p in &mut swarm {
                let (gx, _) = g_best.as_ref().expect("swarm initialized");
                debug_assert_eq!(gx.len(), dims);
                for (i, &g) in gx.iter().enumerate() {
                    let r1: f64 = rng.random_range(0.0..1.0);
                    let r2: f64 = rng.random_range(0.0..1.0);
                    p.v[i] = self.inertia * p.v[i]
                        + self.cognitive * r1 * (p.best_x[i] - p.x[i])
                        + self.social * r2 * (g - p.x[i]);
                    // Velocity clamp to half the axis span.
                    let span = space.params()[i].len() as f64;
                    p.v[i] = p.v[i].clamp(-span / 2.0, span / 2.0);
                    p.x[i] = (p.x[i] + p.v[i]).clamp(0.0, span - 1.0);
                }
                let Some(val) = evaluate(&mut run, &p.x) else {
                    break 'outer;
                };
                if val < p.best_val {
                    p.best_val = val;
                    p.best_x = p.x.clone();
                }
                if g_best.as_ref().is_none_or(|(_, gv)| val < *gv) {
                    g_best = Some((p.x.clone(), val));
                }
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 20))
            .param(Param::int_range("y", 0, 20))
            .param(Param::int_range("z", 0, 20))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl3", "sim", space, |c| {
            Ok(1.0
                + ((c[0] - 14) * (c[0] - 14) + (c[1] - 5) * (c[1] - 5) + (c[2] - 10) * (c[2] - 10))
                    as f64)
        })
    }

    #[test]
    fn swarm_converges_to_optimum_region() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_000);
        let run = ParticleSwarm::default().tune(&eval, 5);
        let best = run.best().unwrap().time_ms().unwrap();
        assert!(best <= 3.0, "PSO should approach optimum, got {best}");
    }

    #[test]
    fn budget_respected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(77);
        let run = ParticleSwarm::default().tune(&eval, 1);
        assert_eq!(run.trials.len(), 77);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(120);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(120);
        assert_eq!(
            ParticleSwarm::default().tune(&e1, 6),
            ParticleSwarm::default().tune(&e2, 6)
        );
    }
}
