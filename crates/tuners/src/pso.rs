//! Particle swarm optimization, discretized to ordinal positions.
//!
//! Ask/tell form: swarm initialization batches freely; the flight phase
//! advances up to `batch` particles per step against the global-best
//! snapshot and folds personal/global bests back in told order.
//! `batch = 1` replays the historical loop bit-exactly; `batch = swarm
//! size` is the classic synchronous PSO iteration.

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// PSO over the ordinal embedding of the space: particles carry continuous
/// coordinates that are rounded/clamped to parameter positions for
/// evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ParticleSwarm {
    /// Number of particles.
    pub particles: usize,
    /// Inertia weight.
    pub inertia: f64,
    /// Cognitive (personal-best) acceleration.
    pub cognitive: f64,
    /// Social (global-best) acceleration.
    pub social: f64,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            particles: 15,
            inertia: 0.7,
            cognitive: 1.5,
            social: 1.5,
        }
    }
}

struct Particle {
    x: Vec<f64>,
    v: Vec<f64>,
    best_x: Vec<f64>,
    best_val: f64,
}

struct PsoStep<'a> {
    cfg: &'a ParticleSwarm,
    space: &'a ConfigSpace,
    rng: StdRng,
    swarm: Vec<Particle>,
    g_best: Option<(Vec<f64>, f64)>,
    /// Next particle of the cyclic flight pass.
    next: usize,
    /// `(particle slot, flown position)` pairs asked but not yet told
    /// (flight phase). The position snapshot keeps (position, value)
    /// pairs honest even when a batch wider than the swarm flies the
    /// same particle twice before its first result arrives.
    pending: Vec<(usize, Vec<f64>)>,
    /// `(x, v)` of initial particles asked but not yet told.
    init_pending: Vec<(Vec<f64>, Vec<f64>)>,
}

impl PsoStep<'_> {
    fn random_particle(&mut self) -> (Vec<f64>, Vec<f64>) {
        let dims = self.space.num_params();
        let x: Vec<f64> = (0..dims)
            .map(|i| {
                self.rng
                    .random_range(0.0..self.space.params()[i].len() as f64 - 1e-9)
            })
            .collect();
        let v: Vec<f64> = (0..dims)
            .map(|i| {
                let span = self.space.params()[i].len() as f64;
                self.rng.random_range(-span / 4.0..span / 4.0)
            })
            .collect();
        (x, v)
    }

    /// Advance particle `p` one flight step against the current global
    /// best (mutates its position in place, as the classic loop did).
    fn fly(&mut self, p: usize) {
        let (gx, _) = self.g_best.as_ref().expect("swarm initialized");
        let gx = gx.clone();
        let particle = &mut self.swarm[p];
        for (i, &g) in gx.iter().enumerate() {
            let r1: f64 = self.rng.random_range(0.0..1.0);
            let r2: f64 = self.rng.random_range(0.0..1.0);
            particle.v[i] = self.cfg.inertia * particle.v[i]
                + self.cfg.cognitive * r1 * (particle.best_x[i] - particle.x[i])
                + self.cfg.social * r2 * (g - particle.x[i]);
            // Velocity clamp to half the axis span.
            let span = self.space.params()[i].len() as f64;
            particle.v[i] = particle.v[i].clamp(-span / 2.0, span / 2.0);
            particle.x[i] = (particle.x[i] + particle.v[i]).clamp(0.0, span - 1.0);
        }
    }
}

impl StepTuner for PsoStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.swarm.len() < self.cfg.particles {
            let want = (self.cfg.particles - self.swarm.len()).min(ctx.batch);
            self.init_pending = (0..want).map(|_| self.random_particle()).collect();
            return self
                .init_pending
                .iter()
                .map(|(x, _)| ordinal::index_of_continuous(self.space, x))
                .collect();
        }
        self.pending.clear();
        let mut out = Vec::with_capacity(ctx.batch);
        for _ in 0..ctx.batch {
            let p = self.next;
            self.next = (self.next + 1) % self.cfg.particles;
            self.fly(p);
            self.pending.push((p, self.swarm[p].x.clone()));
            out.push(ordinal::index_of_continuous(self.space, &self.swarm[p].x));
        }
        out
    }

    fn tell(&mut self, results: &[Told]) {
        if !self.init_pending.is_empty() {
            for ((x, v), r) in self.init_pending.drain(..).zip(results) {
                let val = r.value().unwrap_or(f64::INFINITY);
                // Failed particles carry +inf, exactly like the classic
                // loop — the very first one may even seed the global best.
                if self.g_best.as_ref().is_none_or(|(_, gv)| val < *gv) {
                    self.g_best = Some((x.clone(), val));
                }
                self.swarm.push(Particle {
                    best_x: x.clone(),
                    best_val: val,
                    x,
                    v,
                });
            }
            return;
        }
        for ((p, x), r) in self.pending.drain(..).zip(results) {
            let Some(val) = r.value() else { continue };
            let particle = &mut self.swarm[p];
            if val < particle.best_val {
                particle.best_val = val;
                particle.best_x = x.clone();
            }
            if self.g_best.as_ref().is_none_or(|(_, gv)| val < *gv) {
                self.g_best = Some((x, val));
            }
        }
    }
}

impl ParticleSwarm {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let dims = space.num_params();

        let evaluate = |run: &mut TuningRun, x: &[f64]| -> Option<f64> {
            let pos: Vec<usize> = (0..dims).map(|i| ordinal::clamp(space, i, x[i])).collect();
            let idx = ordinal::index_of(space, &pos);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(f64::INFINITY),
                Recorded::Ok(v) => Some(v),
            }
        };

        // Initialize swarm.
        let mut swarm: Vec<Particle> = Vec::with_capacity(self.particles);
        let mut g_best: Option<(Vec<f64>, f64)> = None;
        for _ in 0..self.particles {
            let x: Vec<f64> = (0..dims)
                .map(|i| rng.random_range(0.0..space.params()[i].len() as f64 - 1e-9))
                .collect();
            let v: Vec<f64> = (0..dims)
                .map(|i| {
                    let span = space.params()[i].len() as f64;
                    rng.random_range(-span / 4.0..span / 4.0)
                })
                .collect();
            let Some(val) = evaluate(&mut run, &x) else {
                return run;
            };
            if g_best.as_ref().is_none_or(|(_, gv)| val < *gv) {
                g_best = Some((x.clone(), val));
            }
            swarm.push(Particle {
                best_x: x.clone(),
                best_val: val,
                x,
                v,
            });
        }

        'outer: loop {
            for p in &mut swarm {
                let (gx, _) = g_best.as_ref().expect("swarm initialized");
                debug_assert_eq!(gx.len(), dims);
                for (i, &g) in gx.iter().enumerate() {
                    let r1: f64 = rng.random_range(0.0..1.0);
                    let r2: f64 = rng.random_range(0.0..1.0);
                    p.v[i] = self.inertia * p.v[i]
                        + self.cognitive * r1 * (p.best_x[i] - p.x[i])
                        + self.social * r2 * (g - p.x[i]);
                    // Velocity clamp to half the axis span.
                    let span = space.params()[i].len() as f64;
                    p.v[i] = p.v[i].clamp(-span / 2.0, span / 2.0);
                    p.x[i] = (p.x[i] + p.v[i]).clamp(0.0, span - 1.0);
                }
                let Some(val) = evaluate(&mut run, &p.x) else {
                    break 'outer;
                };
                if val < p.best_val {
                    p.best_val = val;
                    p.best_x = p.x.clone();
                }
                if g_best.as_ref().is_none_or(|(_, gv)| val < *gv) {
                    g_best = Some((p.x.clone(), val));
                }
            }
        }
        run
    }
}

impl Tuner for ParticleSwarm {
    fn name(&self) -> &str {
        "particle-swarm"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(PsoStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            swarm: Vec::with_capacity(self.particles),
            g_best: None,
            next: 0,
            pending: Vec::new(),
            init_pending: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 20))
            .param(Param::int_range("y", 0, 20))
            .param(Param::int_range("z", 0, 20))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl3", "sim", space, |c| {
            Ok(1.0
                + ((c[0] - 14) * (c[0] - 14) + (c[1] - 5) * (c[1] - 5) + (c[2] - 10) * (c[2] - 10))
                    as f64)
        })
    }

    #[test]
    fn swarm_converges_to_optimum_region() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_000);
        let run = ParticleSwarm::default().tune(&eval, 5);
        let best = run.best().unwrap().time_ms().unwrap();
        assert!(best <= 3.0, "PSO should approach optimum, got {best}");
    }

    #[test]
    fn budget_respected() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(77);
        let run = ParticleSwarm::default().tune(&eval, 1);
        assert_eq!(run.trials.len(), 77);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(120);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(120);
        assert_eq!(
            ParticleSwarm::default().tune(&e1, 6),
            ParticleSwarm::default().tune(&e2, 6)
        );
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = problem();
        let pso = ParticleSwarm::default();
        for seed in 0..6 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(160);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(160);
            assert_eq!(pso.tune(&e1, seed), pso.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn synchronous_swarm_converges() {
        let p = problem();
        let protocol = Protocol::noiseless().with_batch(15);
        let eval = Evaluator::with_protocol(&p, protocol).with_budget(1_000);
        let run = ParticleSwarm::default().tune(&eval, 5);
        assert_eq!(run.trials.len(), 1_000);
        assert!(run.best().unwrap().time_ms().unwrap() <= 4.0);
    }

    #[test]
    fn batch_wider_than_swarm_pairs_positions_with_their_values() {
        // A batch wider than the swarm flies particles twice per ask; the
        // pending snapshot must keep each measured value paired with the
        // position that produced it. The measured best trial and the
        // recorded global best must agree at every batch width.
        let p = problem();
        for batch in [32u32, 64] {
            let protocol = Protocol::noiseless().with_batch(batch);
            let e1 = Evaluator::with_protocol(&p, protocol).with_budget(1_000);
            let e2 = Evaluator::with_protocol(&p, protocol).with_budget(1_000);
            let a = ParticleSwarm::default().tune(&e1, 5);
            let b = ParticleSwarm::default().tune(&e2, 5);
            assert_eq!(a, b);
            assert_eq!(a.trials.len(), 1_000);
            // A healthy swarm still converges despite double-speculation.
            assert!(a.best().unwrap().time_ms().unwrap() <= 6.0, "batch {batch}");
        }
    }
}
