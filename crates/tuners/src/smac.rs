//! SMAC-style sequential model-based optimization with a random-forest
//! surrogate.
//!
//! SMAC3 (Hutter et al., the paper's reference [10]) is one of the four
//! frameworks the BAT interface integrates. Its signature design points are
//! reproduced here: a random-forest surrogate whose between-tree variance
//! provides the uncertainty for Expected Improvement, candidate generation
//! that mixes global random picks with local search around the incumbents,
//! and an interleaved pure-random evaluation every other iteration as a
//! theoretical convergence guarantee.

use std::collections::HashSet;

use bat_core::{Evaluator, TuningRun};
use bat_ml::{Dataset, ForestParams, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bayes::Acquisition;
use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{decode_features, new_run, ordinal, record_eval, Recorded, Tuner};

/// SMAC-style tuner settings.
#[derive(Debug, Clone, Copy)]
pub struct SmacTuner {
    /// Random evaluations before the first model fit.
    pub warmup: usize,
    /// Random candidates scored per iteration.
    pub pool: usize,
    /// Incumbents whose Hamming-1 neighbourhoods join the pool
    /// (SMAC's local-search component).
    pub local_from: usize,
    /// Forest size.
    pub n_trees: usize,
    /// Refit the forest every this many observations.
    pub refit_every: usize,
    /// Interleave a pure-random evaluation every this many iterations
    /// (SMAC interleaves 1-in-2 by default).
    pub interleave_random: usize,
}

impl Default for SmacTuner {
    fn default() -> Self {
        SmacTuner {
            warmup: 15,
            pool: 300,
            local_from: 2,
            n_trees: 30,
            refit_every: 3,
            interleave_random: 2,
        }
    }
}

struct SmacStep<'a> {
    cfg: &'a SmacTuner,
    space: &'a bat_space::ConfigSpace,
    rng: StdRng,
    seed: u64,
    card: u64,
    feature_names: Vec<String>,
    obs_x: Vec<Vec<f64>>,
    obs_y: Vec<f64>, // log time
    seen: HashSet<u64>,
    forest: Option<RandomForest>,
    fitted_at: usize,
    iteration: usize,
    warmup_left: usize,
}

impl StepTuner for SmacStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.warmup_left > 0 {
            let want = self.warmup_left.min(ctx.batch);
            self.warmup_left -= want;
            return (0..want)
                .map(|_| {
                    let idx = self.rng.random_range(0..self.card);
                    self.seen.insert(idx);
                    idx
                })
                .collect();
        }
        self.iteration += 1;
        // Interleaved random evaluation (SMAC's exploration guarantee).
        if (self.cfg.interleave_random > 0
            && self.iteration.is_multiple_of(self.cfg.interleave_random))
            || self.obs_y.len() < 2
        {
            let idx = self.rng.random_range(0..self.card);
            self.seen.insert(idx);
            return vec![idx];
        }

        if self.forest.is_none() || self.obs_y.len() - self.fitted_at >= self.cfg.refit_every {
            let data = Dataset::new(&self.obs_x, self.obs_y.clone(), self.feature_names.clone());
            self.forest = Some(RandomForest::fit(
                &data,
                &ForestParams {
                    n_trees: self.cfg.n_trees,
                    seed: self.seed ^ 0xf0_5e57,
                    ..ForestParams::default()
                },
            ));
            self.fitted_at = self.obs_y.len();
        }
        let model = self.forest.as_ref().expect("fitted above");
        let best_log = self.obs_y.iter().cloned().fold(f64::INFINITY, f64::min);

        // Candidate pool: global random + neighbourhoods of the best
        // `local_from` incumbents.
        let mut candidates: Vec<u64> = (0..self.cfg.pool)
            .map(|_| {
                ordinal::index_of(
                    self.space,
                    &ordinal::random_positions(self.space, &mut self.rng),
                )
            })
            .collect();
        let mut order: Vec<usize> = (0..self.obs_y.len()).collect();
        order.sort_by(|&a, &b| self.obs_y[a].total_cmp(&self.obs_y[b]));
        for &oi in order.iter().take(self.cfg.local_from) {
            let pos: Vec<usize> = self.obs_x[oi]
                .iter()
                .enumerate()
                .map(|(d, &raw)| self.space.params()[d].position(raw as i64).unwrap_or(0))
                .collect();
            for d in 0..pos.len() {
                for alt in 0..self.space.params()[d].len() {
                    if alt != pos[d] {
                        let mut p = pos.clone();
                        p[d] = alt;
                        candidates.push(ordinal::index_of(self.space, &p));
                    }
                }
            }
        }

        // Score unseen candidates by Expected Improvement; ask the top
        // `batch` distinct (stable order: `batch = 1` is the classic
        // first-strict-maximum pick).
        let acq = Acquisition::ExpectedImprovement;
        let d = self.space.num_params();
        let mut cfg = vec![0i64; d];
        let mut features = vec![0.0f64; d];
        let mut scored: Vec<(f64, u64)> = Vec::new();
        for &idx in &candidates {
            if self.seen.contains(&idx) {
                continue;
            }
            decode_features(self.space, idx, &mut cfg, &mut features);
            let p = model.predict(&features);
            scored.push((acq.score(p.mean, p.std_dev(), best_log), idx));
        }
        let mut out = crate::step::take_top_distinct(scored, ctx.batch, false);
        if out.is_empty() {
            out.push(self.rng.random_range(0..self.card));
        }
        for &idx in &out {
            self.seen.insert(idx);
        }
        out
    }

    fn tell(&mut self, results: &[Told]) {
        for r in results {
            if let Some(v) = r.value() {
                self.obs_x.push(
                    self.space
                        .config_at(r.index)
                        .iter()
                        .map(|&x| x as f64)
                        .collect(),
                );
                self.obs_y.push(v.max(1e-12).ln());
            }
        }
    }
}

impl Tuner for SmacTuner {
    fn name(&self) -> &str {
        "smac-forest"
    }

    fn start<'a>(
        &'a self,
        space: &'a bat_space::ConfigSpace,
        seed: u64,
    ) -> Box<dyn StepTuner + 'a> {
        Box::new(SmacStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            seed,
            card: space.cardinality(),
            feature_names: space.names().to_vec(),
            obs_x: Vec::new(),
            obs_y: Vec::new(),
            seen: HashSet::new(),
            forest: None,
            fitted_at: 0,
            iteration: 0,
            warmup_left: self.warmup,
        })
    }
}

impl SmacTuner {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();
        let feature_names: Vec<String> = space.names().to_vec();

        let mut obs_x: Vec<Vec<f64>> = Vec::new();
        let mut obs_y: Vec<f64> = Vec::new(); // log time
        let record = |run: &mut TuningRun,
                      obs_x: &mut Vec<Vec<f64>>,
                      obs_y: &mut Vec<f64>,
                      idx: u64|
         -> Option<()> {
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(()),
                Recorded::Ok(v) => {
                    obs_x.push(space.config_at(idx).iter().map(|&x| x as f64).collect());
                    obs_y.push(v.max(1e-12).ln());
                    Some(())
                }
            }
        };

        // Budget already spent on these indices; scoring skips them.
        let mut seen: HashSet<u64> = HashSet::new();
        for _ in 0..self.warmup {
            let idx = rng.random_range(0..card);
            seen.insert(idx);
            if record(&mut run, &mut obs_x, &mut obs_y, idx).is_none() {
                return run;
            }
        }

        let mut forest: Option<RandomForest> = None;
        let mut fitted_at = 0usize;
        let mut iteration = 0usize;
        while eval.has_budget() {
            iteration += 1;
            // Interleaved random evaluation (SMAC's exploration guarantee).
            if self.interleave_random > 0 && iteration.is_multiple_of(self.interleave_random) {
                let idx = rng.random_range(0..card);
                seen.insert(idx);
                if record(&mut run, &mut obs_x, &mut obs_y, idx).is_none() {
                    break;
                }
                continue;
            }
            if obs_y.len() < 2 {
                let idx = rng.random_range(0..card);
                seen.insert(idx);
                if record(&mut run, &mut obs_x, &mut obs_y, idx).is_none() {
                    break;
                }
                continue;
            }

            if forest.is_none() || obs_y.len() - fitted_at >= self.refit_every {
                let data = Dataset::new(&obs_x, obs_y.clone(), feature_names.clone());
                forest = Some(RandomForest::fit(
                    &data,
                    &ForestParams {
                        n_trees: self.n_trees,
                        seed: seed ^ 0xf0_5e57,
                        ..ForestParams::default()
                    },
                ));
                fitted_at = obs_y.len();
            }
            let model = forest.as_ref().expect("fitted above");
            let best_log = obs_y.iter().cloned().fold(f64::INFINITY, f64::min);

            // Candidate pool: global random + neighbourhoods of the best
            // `local_from` incumbents.
            let mut candidates: Vec<u64> = (0..self.pool)
                .map(|_| ordinal::index_of(space, &ordinal::random_positions(space, &mut rng)))
                .collect();
            let mut order: Vec<usize> = (0..obs_y.len()).collect();
            order.sort_by(|&a, &b| obs_y[a].total_cmp(&obs_y[b]));
            for &oi in order.iter().take(self.local_from) {
                let pos: Vec<usize> = obs_x[oi]
                    .iter()
                    .enumerate()
                    .map(|(d, &raw)| space.params()[d].position(raw as i64).unwrap_or(0))
                    .collect();
                for d in 0..pos.len() {
                    for alt in 0..space.params()[d].len() {
                        if alt != pos[d] {
                            let mut p = pos.clone();
                            p[d] = alt;
                            candidates.push(ordinal::index_of(space, &p));
                        }
                    }
                }
            }

            let acq = Acquisition::ExpectedImprovement;
            let mut chosen = None;
            let mut best_score = f64::NEG_INFINITY;
            let d = space.num_params();
            let mut cfg = vec![0i64; d];
            let mut features = vec![0.0f64; d];
            for &idx in &candidates {
                if seen.contains(&idx) {
                    continue;
                }
                decode_features(space, idx, &mut cfg, &mut features);
                let p = model.predict(&features);
                let s = acq.score(p.mean, p.std_dev(), best_log);
                if s > best_score {
                    best_score = s;
                    chosen = Some(idx);
                }
            }
            let chosen = chosen.unwrap_or_else(|| rng.random_range(0..card));
            seen.insert(chosen);
            if record(&mut run, &mut obs_x, &mut obs_y, chosen).is_none() {
                break;
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn rugged_problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        // Piecewise landscape with interactions: forests shine here.
        let space = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8, 16]))
            .param(Param::new("b", vec![1, 2, 4, 8, 16]))
            .param(Param::int_range("c", 0, 7))
            .param(Param::boolean("d"))
            .build()
            .unwrap();
        SyntheticProblem::new("rugged", "sim", space, |v| {
            let base = (v[0] as f64 * v[1] as f64 / 64.0 - 1.0).abs() + 0.2;
            let c_term = if v[2] == 5 {
                0.0
            } else {
                0.3 + v[2] as f64 * 0.05
            };
            let d_term = if v[3] == 1 { 0.0 } else { 0.4 };
            Ok(base + c_term + d_term)
        })
    }

    #[test]
    fn smac_finds_near_optimal_configuration() {
        let p = rugged_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(150);
        let run = SmacTuner::default().tune(&eval, 1);
        let best = run.best().unwrap().time_ms().unwrap();
        assert!(best <= 0.3, "best {best}");
    }

    #[test]
    fn smac_beats_random_at_equal_budget() {
        let p = rugged_problem();
        let budget = 80;
        let mut wins = 0;
        for seed in 0..5 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let s = SmacTuner::default()
                .tune(&e1, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            let r = crate::random::RandomSearch
                .tune(&e2, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            if s <= r {
                wins += 1;
            }
        }
        assert!(wins >= 3, "SMAC won only {wins}/5");
    }

    #[test]
    fn budget_is_respected_exactly() {
        let p = rugged_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(64);
        let run = SmacTuner::default().tune(&eval, 0);
        assert_eq!(run.trials.len(), 64);
    }

    #[test]
    fn interleaving_disabled_still_works() {
        let p = rugged_problem();
        let tuner = SmacTuner {
            interleave_random: 0,
            ..SmacTuner::default()
        };
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(40);
        let run = tuner.tune(&eval, 3);
        assert_eq!(run.trials.len(), 40);
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = rugged_problem();
        let t = SmacTuner::default();
        for seed in 0..3 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(45);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(45);
            assert_eq!(t.tune(&e1, seed), t.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_smac_converges() {
        let p = rugged_problem();
        let protocol = Protocol::noiseless().with_batch(8);
        let eval = Evaluator::with_protocol(&p, protocol).with_budget(150);
        let run = SmacTuner::default().tune(&eval, 1);
        assert_eq!(run.trials.len(), 150);
        assert!(run.best().unwrap().time_ms().unwrap() <= 0.4);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = rugged_problem();
        let idx = |seed| {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(30);
            SmacTuner::default()
                .tune(&eval, seed)
                .trials
                .iter()
                .map(|t| t.index)
                .collect::<Vec<_>>()
        };
        assert_eq!(idx(9), idx(9));
    }
}
