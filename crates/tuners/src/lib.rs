//! # bat-tuners
//!
//! Optimization algorithms for BAT-rs behind one [`Tuner`] trait: random
//! and exhaustive search, first/best-improvement multi-start local search,
//! iterated local search, simulated annealing, basin hopping, a genetic
//! algorithm, particle swarm, differential evolution, a GBDT
//! surrogate-model tuner (SMBO), Gaussian-process Bayesian optimization
//! (the family of the paper's reference \[22\]), a Tree-structured Parzen
//! Estimator (Optuna's sampler) and a SMAC-style random-forest SMBO
//! (SMAC3's model).
//!
//! Every tuner evaluates exclusively through [`bat_core::Evaluator`], so
//! measurement protocol and budget accounting are identical across
//! algorithms — the fairness property the paper's shared interface exists
//! to provide.

#![warn(missing_docs)]

mod anneal;
mod bayes;
mod de;
mod genetic;
mod local;
mod pso;
mod random;
mod smac;
mod step;
mod surrogate;
mod tpe;
mod tuner;
mod warmstart;

pub use anneal::{BasinHopping, SimulatedAnnealing};
pub use bayes::{Acquisition, BayesianOptimization};
pub use de::DifferentialEvolution;
pub use genetic::GeneticAlgorithm;
pub use local::{IteratedLocalSearch, LocalSearch, Strategy};
pub use pso::ParticleSwarm;
pub use random::{ExhaustiveSearch, RandomSearch};
pub use smac::SmacTuner;
pub use step::{drive, try_drive, StepCtx, StepTuner, Told};
pub use surrogate::SurrogateTuner;
pub use tpe::Tpe;
pub use tuner::{new_run, ordinal, record_eval, record_eval2, Recorded, Tuner};
pub use warmstart::{TransferDatabase, WarmStartTuner};

/// All tuners with default settings, for suite-wide comparisons.
pub fn default_tuners() -> Vec<Box<dyn Tuner>> {
    vec![
        Box::new(RandomSearch),
        Box::new(LocalSearch::default()),
        Box::new(LocalSearch {
            strategy: Strategy::BestImprovement,
            ..LocalSearch::default()
        }),
        Box::new(IteratedLocalSearch::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(BasinHopping::default()),
        Box::new(GeneticAlgorithm::default()),
        Box::new(ParticleSwarm::default()),
        Box::new(DifferentialEvolution::default()),
        Box::new(SurrogateTuner::default()),
        Box::new(BayesianOptimization::default()),
        Box::new(Tpe::default()),
        Box::new(SmacTuner::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    #[test]
    fn all_default_tuners_run_and_respect_budget() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 12))
            .param(Param::int_range("y", 0, 12))
            .restrict("x + y <= 20")
            .build()
            .unwrap();
        let p = SyntheticProblem::new("toy", "sim", space, |c| {
            Ok(1.0 + ((c[0] - 5) * (c[0] - 5) + (c[1] - 8) * (c[1] - 8)) as f64)
        });
        for tuner in default_tuners() {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(64);
            let run = tuner.tune(&eval, 1);
            assert_eq!(run.trials.len(), 64, "{}", tuner.name());
            assert!(run.successes() > 0, "{}", tuner.name());
            assert_eq!(run.tuner, tuner.name());
        }
    }

    #[test]
    fn tuner_names_are_unique() {
        let names: Vec<String> = default_tuners()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
