//! Random search — the algorithm the paper's Fig. 2 evaluates.

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, record_eval, Recorded, Tuner};

/// Uniform random sampling (with replacement) over the full cartesian
/// space. Restricted/invalid draws consume budget, exactly as sampling a
/// real tuner's search space would.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

struct RandomStep {
    rng: StdRng,
    card: u64,
}

impl StepTuner for RandomStep {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        (0..ctx.batch)
            .map(|_| self.rng.random_range(0..self.card))
            .collect()
    }

    fn tell(&mut self, _results: &[Told]) {}
}

impl Tuner for RandomSearch {
    fn name(&self) -> &str {
        "random-search"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(RandomStep {
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
        })
    }
}

impl RandomSearch {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let card = eval.problem().space().cardinality();
        loop {
            let idx = rng.random_range(0..card);
            match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => break,
                Recorded::Failed | Recorded::Ok(_) => {}
            }
        }
        run
    }
}

/// Exhaustive (grid) search in index order; the reference "tuner" used to
/// produce ground-truth optima for the exhaustively-searched benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

struct ExhaustiveStep {
    next: u64,
    card: u64,
}

impl StepTuner for ExhaustiveStep {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        let end = self.next.saturating_add(ctx.batch as u64).min(self.card);
        let out: Vec<u64> = (self.next..end).collect();
        self.next = end;
        out
    }

    fn tell(&mut self, _results: &[Told]) {}
}

impl Tuner for ExhaustiveSearch {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, _seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(ExhaustiveStep {
            next: 0,
            card: space.cardinality(),
        })
    }
}

impl ExhaustiveSearch {
    /// The pre-ask/tell pull loop (equivalence oracle, see
    /// [`RandomSearch::reference_tune`]).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut run = new_run(eval, self.name(), seed);
        let card = eval.problem().space().cardinality();
        for idx in 0..card {
            if matches!(record_eval(eval, &mut run, idx), Recorded::Exhausted) {
                break;
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 19))
            .param(Param::int_range("y", 0, 19))
            .build()
            .unwrap();
        SyntheticProblem::new("quad", "sim", space, |c| {
            Ok(1.0 + ((c[0] - 7) * (c[0] - 7) + (c[1] - 3) * (c[1] - 3)) as f64)
        })
    }

    #[test]
    fn random_search_respects_budget() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(50);
        let run = RandomSearch.tune(&eval, 1);
        assert_eq!(run.trials.len(), 50);
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(30);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(30);
        let a = RandomSearch.tune(&e1, 7);
        let b = RandomSearch.tune(&e2, 7);
        assert_eq!(a, b);
        let e3 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(30);
        let c = RandomSearch.tune(&e3, 8);
        assert_ne!(a.trials, c.trials);
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless());
        let run = ExhaustiveSearch.tune(&eval, 0);
        assert_eq!(run.trials.len(), 400);
        let best = run.best().unwrap();
        assert_eq!(best.config, vec![7, 3]);
        assert_eq!(best.time_ms(), Some(1.0));
    }

    #[test]
    fn random_search_converges_with_enough_budget() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(2000);
        let run = RandomSearch.tune(&eval, 3);
        assert_eq!(run.best().unwrap().time_ms(), Some(1.0));
    }
}
