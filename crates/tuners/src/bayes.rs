//! Bayesian optimization with a Gaussian-process surrogate.
//!
//! This is the algorithm family of Willemsen et al., "Bayesian Optimization
//! for auto-tuning GPU kernels" (the paper's reference \[22\]): a GP posterior
//! over the (log) runtime drives an acquisition function that balances
//! exploiting the predicted-fast region against exploring where the model is
//! uncertain.
//!
//! The GP is exact, so each posterior update is O(n³) in the number of
//! observations; hyperparameters are re-selected from a grid every
//! [`BayesianOptimization::hyper_refit_every`] observations, and the
//! training set is capped at [`BayesianOptimization::max_observations`]
//! (keeping the best observations plus a random subsample, so the incumbent
//! region stays well modelled).

use std::collections::HashSet;

use bat_core::{Evaluator, TuningRun};
use bat_ml::stats::{norm_cdf, norm_pdf};
use bat_ml::{GaussianProcess, GpParams, KernelKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Acquisition functions for minimization. All scores are
/// "higher-is-better" so candidate selection is a single `max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected improvement over the incumbent: the default in ref \[22\].
    ExpectedImprovement,
    /// Probability of improving on the incumbent — greedier than EI.
    ProbabilityOfImprovement,
    /// Lower confidence bound `μ − β σ` (negated into a score);
    /// `beta` sets the exploration weight.
    LowerConfidenceBound {
        /// Exploration weight (σ multiplier). Typical values 1–3.
        beta: f64,
    },
}

impl Acquisition {
    /// Score a candidate with posterior `(mean, std)` against the
    /// incumbent objective `best` (all in minimization units).
    pub fn score(&self, mean: f64, std: f64, best: f64) -> f64 {
        match *self {
            Acquisition::ExpectedImprovement => {
                if std <= 1e-12 {
                    return (best - mean).max(0.0);
                }
                let z = (best - mean) / std;
                std * (z * norm_cdf(z) + norm_pdf(z))
            }
            Acquisition::ProbabilityOfImprovement => {
                if std <= 1e-12 {
                    return if mean < best { 1.0 } else { 0.0 };
                }
                norm_cdf((best - mean) / std)
            }
            Acquisition::LowerConfidenceBound { beta } => -(mean - beta * std),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Acquisition::ExpectedImprovement => "ei",
            Acquisition::ProbabilityOfImprovement => "pi",
            Acquisition::LowerConfidenceBound { .. } => "lcb",
        }
    }
}

/// GP-based Bayesian optimization tuner.
#[derive(Debug, Clone)]
pub struct BayesianOptimization {
    /// Random evaluations before the first model fit.
    pub warmup: usize,
    /// Candidate pool size per iteration (random + incumbent neighbours).
    pub pool: usize,
    /// Acquisition function.
    pub acquisition: Acquisition,
    /// Kernel family for the GP.
    pub kernel: KernelKind,
    /// Re-select GP hyperparameters from the grid every this many new
    /// observations (posterior itself is refreshed every iteration).
    pub hyper_refit_every: usize,
    /// Cap on GP training-set size (exact GP is O(n³)).
    pub max_observations: usize,
    name: String,
}

impl BayesianOptimization {
    /// Construct with an explicit acquisition function.
    pub fn with_acquisition(acquisition: Acquisition) -> Self {
        BayesianOptimization {
            name: format!("gp-bo-{}", acquisition.name()),
            acquisition,
            ..BayesianOptimization::default()
        }
    }
}

impl Default for BayesianOptimization {
    fn default() -> Self {
        BayesianOptimization {
            warmup: 15,
            pool: 250,
            acquisition: Acquisition::ExpectedImprovement,
            kernel: KernelKind::Matern52,
            hyper_refit_every: 10,
            max_observations: 250,
            name: "gp-bo-ei".to_string(),
        }
    }
}

/// GP features of a configuration: *ordinal positions* per parameter, not
/// raw values. Tuning parameters are mostly geometric sequences (1, 2, 4,
/// …, 1024); positions make them uniformly spaced, which is the encoding
/// GP-based kernel tuning uses in practice (ref \[22\]) — with raw values a
/// single lengthscale cannot serve both ends of the sequence.
fn gp_features(space: &bat_space::ConfigSpace, index: u64) -> Vec<f64> {
    ordinal::positions_of(space, index)
        .into_iter()
        .map(|p| p as f64)
        .collect()
}

/// Observation store: feature rows + log-times, with the bookkeeping
/// needed for the capped training subset.
struct Observations {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Observations {
    /// Training subset: all points when small; otherwise the `cap/2` best
    /// plus a seeded random sample of the rest.
    fn training_set(&self, cap: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = self.y.len();
        if n <= cap {
            return (self.x.clone(), self.y.clone());
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| self.y[a].total_cmp(&self.y[b]));
        let keep_best = cap / 2;
        let mut chosen: Vec<usize> = order[..keep_best].to_vec();
        let mut rest: Vec<usize> = order[keep_best..].to_vec();
        rest.shuffle(rng);
        chosen.extend(rest.into_iter().take(cap - keep_best));
        let x = chosen.iter().map(|&i| self.x[i].clone()).collect();
        let y = chosen.iter().map(|&i| self.y[i]).collect();
        (x, y)
    }
}

struct BayesStep<'a> {
    cfg: &'a BayesianOptimization,
    space: &'a bat_space::ConfigSpace,
    rng: StdRng,
    card: u64,
    obs: Observations,
    best_log: f64,
    best_idx: Option<u64>,
    /// Configurations already spent budget on (candidate dedup).
    seen: HashSet<u64>,
    hyper: Option<(f64, f64)>, // (lengthscale, noise)
    obs_at_last_grid_fit: usize,
    warmup_left: usize,
}

impl StepTuner for BayesStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.warmup_left > 0 {
            let want = self.warmup_left.min(ctx.batch);
            self.warmup_left -= want;
            return (0..want)
                .map(|_| {
                    let idx = self.rng.random_range(0..self.card);
                    self.seen.insert(idx);
                    idx
                })
                .collect();
        }
        if self.obs.y.len() < 2 {
            // Everything failed so far: keep sampling at random.
            let idx = self.rng.random_range(0..self.card);
            self.seen.insert(idx);
            return vec![idx];
        }

        let (tx, ty) = self
            .obs
            .training_set(self.cfg.max_observations, &mut self.rng);
        let grid_due = self.hyper.is_none()
            || self.obs.y.len() - self.obs_at_last_grid_fit >= self.cfg.hyper_refit_every;
        let params = if grid_due {
            GpParams {
                kernel: self.cfg.kernel,
                ..GpParams::default()
            }
        } else {
            let (ell, noise) = self.hyper.expect("set when not due");
            GpParams::fixed(self.cfg.kernel, ell, noise)
        };
        let gp = GaussianProcess::fit(&tx, &ty, &params);
        if grid_due {
            self.hyper = Some((gp.lengthscale(), gp.noise()));
            self.obs_at_last_grid_fit = self.obs.y.len();
        }

        // Candidate pool: random configurations plus Hamming-1 neighbours
        // of the incumbent (local refinement, as in SMAC/ref [22]).
        let mut candidates: Vec<u64> = (0..self.cfg.pool)
            .map(|_| {
                ordinal::index_of(
                    self.space,
                    &ordinal::random_positions(self.space, &mut self.rng),
                )
            })
            .collect();
        if let Some(bi) = self.best_idx {
            let pos = ordinal::positions_of(self.space, bi);
            for i in 0..pos.len() {
                for alt in 0..self.space.params()[i].len() {
                    if alt != pos[i] {
                        let mut p = pos.clone();
                        p[i] = alt;
                        candidates.push(ordinal::index_of(self.space, &p));
                    }
                }
            }
        }

        // Score unseen candidates; ask the top `batch` distinct (stable
        // order, so `batch = 1` is the classic first-strict-maximum pick).
        let mut scored: Vec<(f64, u64)> = Vec::new();
        for &idx in &candidates {
            if self.seen.contains(&idx) {
                continue;
            }
            let p = gp.predict(&gp_features(self.space, idx));
            let s = self
                .cfg
                .acquisition
                .score(p.mean, p.std_dev(), self.best_log);
            scored.push((s, idx));
        }
        let mut out = crate::step::take_top_distinct(scored, ctx.batch, false);
        if out.is_empty() {
            // Whole pool already evaluated (tiny spaces): fall back to a
            // fresh random draw, seen or not.
            out.push(self.rng.random_range(0..self.card));
        }
        for &idx in &out {
            self.seen.insert(idx);
        }
        out
    }

    fn tell(&mut self, results: &[Told]) {
        for r in results {
            if let Some(v) = r.value() {
                let logv = v.max(1e-12).ln();
                self.obs.x.push(gp_features(self.space, r.index));
                self.obs.y.push(logv);
                if logv < self.best_log {
                    self.best_log = logv;
                    self.best_idx = Some(r.index);
                }
            }
        }
    }
}

impl Tuner for BayesianOptimization {
    fn name(&self) -> &str {
        &self.name
    }

    fn start<'a>(
        &'a self,
        space: &'a bat_space::ConfigSpace,
        seed: u64,
    ) -> Box<dyn StepTuner + 'a> {
        Box::new(BayesStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
            obs: Observations {
                x: Vec::new(),
                y: Vec::new(),
            },
            best_log: f64::INFINITY,
            best_idx: None,
            seen: HashSet::new(),
            hyper: None,
            obs_at_last_grid_fit: 0,
            warmup_left: self.warmup,
        })
    }
}

impl BayesianOptimization {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();
        let card = space.cardinality();

        let mut obs = Observations {
            x: Vec::new(),
            y: Vec::new(),
        };
        let mut best_log = f64::INFINITY;
        let mut best_idx: Option<u64> = None;
        // Configurations already spent budget on: re-evaluating one costs
        // an evaluation but teaches the model nothing, so candidates are
        // deduplicated against this set.
        let mut seen: HashSet<u64> = HashSet::new();
        let record = |run: &mut TuningRun,
                      obs: &mut Observations,
                      best_log: &mut f64,
                      best_idx: &mut Option<u64>,
                      idx: u64|
         -> Option<()> {
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => None,
                Recorded::Failed => Some(()),
                Recorded::Ok(v) => {
                    let logv = v.max(1e-12).ln();
                    obs.x.push(gp_features(space, idx));
                    obs.y.push(logv);
                    if logv < *best_log {
                        *best_log = logv;
                        *best_idx = Some(idx);
                    }
                    Some(())
                }
            }
        };

        for _ in 0..self.warmup {
            let idx = rng.random_range(0..card);
            seen.insert(idx);
            if record(&mut run, &mut obs, &mut best_log, &mut best_idx, idx).is_none() {
                return run;
            }
        }

        let mut hyper: Option<(f64, f64)> = None; // (lengthscale, noise)
        let mut obs_at_last_grid_fit = 0usize;
        while eval.has_budget() {
            if obs.y.len() < 2 {
                // Everything failed so far: keep sampling at random.
                let idx = rng.random_range(0..card);
                seen.insert(idx);
                if record(&mut run, &mut obs, &mut best_log, &mut best_idx, idx).is_none() {
                    break;
                }
                continue;
            }

            let (tx, ty) = obs.training_set(self.max_observations, &mut rng);
            let grid_due =
                hyper.is_none() || obs.y.len() - obs_at_last_grid_fit >= self.hyper_refit_every;
            let params = if grid_due {
                GpParams {
                    kernel: self.kernel,
                    ..GpParams::default()
                }
            } else {
                let (ell, noise) = hyper.expect("set when not due");
                GpParams::fixed(self.kernel, ell, noise)
            };
            let gp = GaussianProcess::fit(&tx, &ty, &params);
            if grid_due {
                hyper = Some((gp.lengthscale(), gp.noise()));
                obs_at_last_grid_fit = obs.y.len();
            }

            // Candidate pool: random configurations plus Hamming-1
            // neighbours of the incumbent (local refinement, as in the
            // candidate generation of SMAC/ref [22]).
            let mut candidates: Vec<u64> = (0..self.pool)
                .map(|_| ordinal::index_of(space, &ordinal::random_positions(space, &mut rng)))
                .collect();
            if let Some(bi) = best_idx {
                let pos = ordinal::positions_of(space, bi);
                for i in 0..pos.len() {
                    for alt in 0..space.params()[i].len() {
                        if alt != pos[i] {
                            let mut p = pos.clone();
                            p[i] = alt;
                            candidates.push(ordinal::index_of(space, &p));
                        }
                    }
                }
            }

            let mut chosen = None;
            let mut best_score = f64::NEG_INFINITY;
            for &idx in &candidates {
                if seen.contains(&idx) {
                    continue;
                }
                let p = gp.predict(&gp_features(space, idx));
                let s = self.acquisition.score(p.mean, p.std_dev(), best_log);
                if s > best_score {
                    best_score = s;
                    chosen = Some(idx);
                }
            }
            // Whole pool already evaluated (tiny spaces): fall back to a
            // fresh random draw, seen or not.
            let chosen = chosen.unwrap_or_else(|| rng.random_range(0..card));
            seen.insert(chosen);
            if record(&mut run, &mut obs, &mut best_log, &mut best_idx, chosen).is_none() {
                break;
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn smooth_problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8, 16, 32]))
            .param(Param::new("b", vec![1, 2, 4, 8, 16, 32]))
            .param(Param::int_range("c", 0, 9))
            .build()
            .unwrap();
        SyntheticProblem::new("ridge", "sim", space, |v| {
            let a = v[0] as f64;
            let b = v[1] as f64;
            let c = v[2] as f64;
            Ok((a / 8.0 - 1.0).powi(2) + (b / 8.0 - 1.0).powi(2) + 0.3 * (c - 4.0).powi(2) + 0.5)
        })
    }

    #[test]
    fn ei_scores_favor_low_mean_and_high_uncertainty() {
        let acq = Acquisition::ExpectedImprovement;
        let best = 1.0;
        // Lower mean is better at equal σ.
        assert!(acq.score(0.5, 0.1, best) > acq.score(0.9, 0.1, best));
        // Higher σ is better at equal (bad) mean.
        assert!(acq.score(1.5, 1.0, best) > acq.score(1.5, 0.01, best));
        // Zero σ reduces to plain improvement.
        assert_eq!(acq.score(0.4, 0.0, best), 0.6);
        assert_eq!(acq.score(1.4, 0.0, best), 0.0);
    }

    #[test]
    fn pi_and_lcb_scores_are_sane() {
        let best = 2.0;
        let pi = Acquisition::ProbabilityOfImprovement;
        assert!(pi.score(1.0, 0.5, best) > 0.97);
        assert!(pi.score(3.0, 0.5, best) < 0.03);
        assert_eq!(pi.score(1.0, 0.0, best), 1.0);
        assert_eq!(pi.score(3.0, 0.0, best), 0.0);

        let lcb = Acquisition::LowerConfidenceBound { beta: 2.0 };
        // score = -(μ - βσ): more uncertainty raises the score.
        assert!(lcb.score(1.0, 1.0, best) > lcb.score(1.0, 0.1, best));
    }

    #[test]
    fn bo_finds_optimum_on_smooth_landscape() {
        let p = smooth_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(120);
        let run = BayesianOptimization::default().tune(&eval, 3);
        let best = run.best().unwrap();
        assert_eq!(best.config, vec![8, 8, 4], "best {:?}", best.config);
    }

    #[test]
    fn bo_beats_random_at_equal_budget() {
        let p = smooth_problem();
        let budget = 70;
        let mut wins = 0;
        for seed in 0..5 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let b = BayesianOptimization::default()
                .tune(&e1, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            let r = crate::random::RandomSearch
                .tune(&e2, seed)
                .best()
                .unwrap()
                .time_ms()
                .unwrap();
            if b <= r {
                wins += 1;
            }
        }
        assert!(wins >= 4, "BO won only {wins}/5 against random search");
    }

    #[test]
    fn budget_is_respected_exactly() {
        let p = smooth_problem();
        for budget in [10, 16, 45] {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = BayesianOptimization::default().tune(&eval, 0);
            assert_eq!(run.trials.len(), budget as usize);
        }
    }

    #[test]
    fn acquisition_variants_all_run() {
        let p = smooth_problem();
        for acq in [
            Acquisition::ExpectedImprovement,
            Acquisition::ProbabilityOfImprovement,
            Acquisition::LowerConfidenceBound { beta: 2.0 },
        ] {
            let tuner = BayesianOptimization::with_acquisition(acq);
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(40);
            let run = tuner.tune(&eval, 1);
            assert_eq!(run.trials.len(), 40, "{}", tuner.name());
            assert!(run.best().is_some());
        }
    }

    #[test]
    fn names_reflect_acquisition() {
        assert_eq!(
            BayesianOptimization::with_acquisition(Acquisition::ProbabilityOfImprovement).name(),
            "gp-bo-pi"
        );
        assert_eq!(BayesianOptimization::default().name(), "gp-bo-ei");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = smooth_problem();
        let run1 = {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(35);
            BayesianOptimization::default().tune(&eval, 7)
        };
        let run2 = {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(35);
            BayesianOptimization::default().tune(&eval, 7)
        };
        let idx1: Vec<u64> = run1.trials.iter().map(|t| t.index).collect();
        let idx2: Vec<u64> = run2.trials.iter().map(|t| t.index).collect();
        assert_eq!(idx1, idx2);
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = smooth_problem();
        let bo = BayesianOptimization::default();
        for seed in 0..3 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(45);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(45);
            assert_eq!(bo.tune(&e1, seed), bo.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_bo_converges() {
        let p = smooth_problem();
        let protocol = Protocol::noiseless().with_batch(4);
        let eval = Evaluator::with_protocol(&p, protocol).with_budget(120);
        let run = BayesianOptimization::default().tune(&eval, 3);
        assert_eq!(run.trials.len(), 120);
        assert!(run.best().unwrap().time_ms().unwrap() <= 0.6);
    }

    #[test]
    fn observation_cap_keeps_tuner_running() {
        let p = smooth_problem();
        let tuner = BayesianOptimization {
            max_observations: 20,
            warmup: 5,
            ..BayesianOptimization::default()
        };
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(60);
        let run = tuner.tune(&eval, 2);
        assert_eq!(run.trials.len(), 60);
        // Still finds a good region despite the cap.
        assert!(run.best().unwrap().time_ms().unwrap() < 1.0);
    }
}
