//! Warm-started tuning: seed the search with known-good configurations.
//!
//! The paper's portability study (Fig. 5) shows optimal configurations
//! transfer between architectures at 58.5–99.9% of optimal — too lossy to
//! use *as is*, but far better than a random starting point. The
//! actionable consequence is transfer tuning: evaluate the configurations
//! that were optimal on other architectures first, then continue with a
//! normal tuner. [`WarmStartTuner`] implements exactly that, sharing one
//! budget between the seed evaluations and the inner tuner; the
//! [`TransferDatabase`] is the cross-architecture store those seeds come
//! from (and that multi-objective tuners like NSGA-II can draw initial
//! populations from).

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{record_eval, Recorded, Tuner};

/// A store of known-good configurations per platform: the suite's transfer
/// database. Entries are kept in insertion order, so seed evaluation order
/// (and therefore every downstream artifact) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferDatabase {
    entries: Vec<(String, Vec<i64>)>,
}

impl TransferDatabase {
    /// An empty database.
    pub fn new() -> TransferDatabase {
        TransferDatabase::default()
    }

    /// Record a good configuration observed on `platform` (e.g. the best
    /// configuration of a finished tuning run there).
    pub fn record(&mut self, platform: impl Into<String>, config: Vec<i64>) {
        self.entries.push((platform.into(), config));
    }

    /// Number of recorded configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The transfer seeds for tuning on `target_platform`: every recorded
    /// configuration from *other* platforms, in insertion order (the
    /// cross-architecture transfer of the paper's Fig. 5).
    pub fn seeds_for(&self, target_platform: &str) -> Vec<Vec<i64>> {
        self.entries
            .iter()
            .filter(|(p, _)| p != target_platform)
            .map(|(_, c)| c.clone())
            .collect()
    }
}

/// Wraps any [`Tuner`] with a list of seed configurations that are
/// evaluated before the inner search starts.
///
/// Seeds that are not exactly representable in the target space (a value
/// missing from a parameter's list) are skipped without consuming budget —
/// the cross-architecture case where a space differs per platform.
pub struct WarmStartTuner<T: Tuner> {
    /// Configurations to evaluate first (e.g. optima from other GPUs).
    pub seeds: Vec<Vec<i64>>,
    /// The tuner that continues after the seeds.
    pub inner: T,
    name: String,
}

impl<T: Tuner> WarmStartTuner<T> {
    /// Wrap `inner`, evaluating `seeds` first.
    pub fn new(seeds: Vec<Vec<i64>>, inner: T) -> Self {
        let name = format!("warmstart+{}", inner.name());
        WarmStartTuner { seeds, inner, name }
    }

    /// Wrap `inner` with the transfer seeds a database holds for runs on
    /// `target_platform` (configurations recorded on other platforms).
    pub fn from_database(db: &TransferDatabase, target_platform: &str, inner: T) -> Self {
        Self::new(db.seeds_for(target_platform), inner)
    }
}

struct WarmStep<'a> {
    /// Representable seeds as dense indices, in seed-list order.
    seeds: Vec<u64>,
    cursor: usize,
    /// Whether the previous ask came from the seed phase.
    in_seeds: bool,
    inner: Box<dyn StepTuner + 'a>,
}

impl StepTuner for WarmStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        if self.cursor < self.seeds.len() {
            self.in_seeds = true;
            let end = (self.cursor + ctx.batch).min(self.seeds.len());
            let out = self.seeds[self.cursor..end].to_vec();
            self.cursor = end;
            return out;
        }
        self.in_seeds = false;
        self.inner.ask(ctx)
    }

    fn tell(&mut self, results: &[Told]) {
        if !self.in_seeds {
            self.inner.tell(results);
        }
    }
}

impl<T: Tuner> WarmStartTuner<T> {
    /// The pre-ask/tell seed-splicing loop, kept as the equivalence oracle
    /// for the step driver (the inner search runs through its own `tune`,
    /// which is itself oracle-tested per tuner).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let space = eval.problem().space();
        // Evaluate representable seeds against the shared budget.
        let mut prefix = crate::tuner::new_run(eval, self.name(), seed);
        for cfg in &self.seeds {
            let Some(idx) = space.index_of(cfg) else {
                continue; // not representable here: skip for free
            };
            if matches!(record_eval(eval, &mut prefix, idx), Recorded::Exhausted) {
                return prefix;
            }
        }
        // Hand the evaluator (budget already partly spent, cache warm) to
        // the inner tuner and splice the histories.
        let inner_run = self.inner.tune(eval, seed);
        for mut t in inner_run.trials {
            t.eval = prefix.trials.len() as u64 + 1;
            prefix.push(t);
        }
        prefix
    }
}

impl<T: Tuner> Tuner for WarmStartTuner<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        let seeds: Vec<u64> = self
            .seeds
            .iter()
            .filter_map(|cfg| space.index_of(cfg)) // unrepresentable: free skip
            .collect();
        Box::new(WarmStep {
            seeds,
            cursor: 0,
            in_seeds: false,
            inner: self.inner.start(space, seed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSearch;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 31))
            .param(Param::int_range("y", 0, 31))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl", "sim", space, |v| {
            Ok(1.0 + ((v[0] - 20) * (v[0] - 20) + (v[1] - 13) * (v[1] - 13)) as f64)
        })
    }

    #[test]
    fn seeds_are_evaluated_first_in_order() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(20);
        let tuner = WarmStartTuner::new(vec![vec![5, 5], vec![20, 13]], RandomSearch);
        let run = tuner.tune(&eval, 0);
        assert_eq!(run.trials.len(), 20);
        assert_eq!(run.trials[0].config, vec![5, 5]);
        assert_eq!(run.trials[1].config, vec![20, 13]);
        // The second seed is the optimum: best is found at evaluation 2.
        assert_eq!(run.best().unwrap().config, vec![20, 13]);
        assert_eq!(run.tuner, "warmstart+random-search");
    }

    #[test]
    fn unrepresentable_seeds_are_skipped_for_free() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(10);
        // 99 is not a value of either parameter.
        let tuner = WarmStartTuner::new(vec![vec![99, 99], vec![7, 7]], RandomSearch);
        let run = tuner.tune(&eval, 1);
        assert_eq!(run.trials.len(), 10);
        assert_eq!(run.trials[0].config, vec![7, 7]);
    }

    #[test]
    fn budget_shared_between_seeds_and_inner() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(3);
        let seeds: Vec<Vec<i64>> = (0..5).map(|i| vec![i, i]).collect();
        let run = WarmStartTuner::new(seeds, RandomSearch).tune(&eval, 0);
        // Only 3 of the 5 seeds fit the budget; inner never runs.
        assert_eq!(run.trials.len(), 3);
        assert_eq!(run.trials[2].config, vec![2, 2]);
    }

    #[test]
    fn good_seed_beats_cold_start_at_tiny_budget() {
        let p = problem();
        let budget = 8;
        let cold = {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            RandomSearch
                .tune(&eval, 3)
                .best()
                .unwrap()
                .time_ms()
                .unwrap()
        };
        let warm = {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            // A near-optimal transfer seed (one off the optimum).
            WarmStartTuner::new(vec![vec![19, 13]], RandomSearch)
                .tune(&eval, 3)
                .best()
                .unwrap()
                .time_ms()
                .unwrap()
        };
        assert!(warm <= cold, "warm {warm} vs cold {cold}");
        assert!(warm <= 2.0, "transfer seed value not exploited: {warm}");
    }

    #[test]
    fn empty_seed_list_degenerates_to_inner() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(15);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(15);
        let warm = WarmStartTuner::new(vec![], RandomSearch).tune(&e1, 9);
        let plain = RandomSearch.tune(&e2, 9);
        let wi: Vec<u64> = warm.trials.iter().map(|t| t.index).collect();
        let pi: Vec<u64> = plain.trials.iter().map(|t| t.index).collect();
        assert_eq!(wi, pi);
    }

    #[test]
    fn step_driver_matches_reference_splice_at_batch_one() {
        let p = problem();
        let tuner = WarmStartTuner::new(vec![vec![5, 5], vec![99, 99], vec![20, 13]], RandomSearch);
        for seed in 0..4 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(25);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(25);
            assert_eq!(tuner.tune(&e1, seed), tuner.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_seed_phase_preserves_order() {
        let p = problem();
        let seeds: Vec<Vec<i64>> = (0..6).map(|i| vec![i, i]).collect();
        let eval =
            Evaluator::with_protocol(&p, Protocol::noiseless().with_batch(4)).with_budget(20);
        let run = WarmStartTuner::new(seeds, RandomSearch).tune(&eval, 0);
        for (i, t) in run.trials.iter().take(6).enumerate() {
            assert_eq!(t.config, vec![i as i64, i as i64]);
        }
        assert_eq!(run.trials.len(), 20);
    }

    #[test]
    fn transfer_database_yields_other_platform_seeds_in_order() {
        let mut db = TransferDatabase::new();
        db.record("RTX 3090", vec![1, 2]);
        db.record("MI100", vec![3, 4]);
        db.record("RTX 3090", vec![5, 6]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.seeds_for("RTX 3090"), vec![vec![3, 4]]);
        assert_eq!(db.seeds_for("MI100"), vec![vec![1, 2], vec![5, 6]]);
        assert_eq!(
            db.seeds_for("A4000"),
            vec![vec![1, 2], vec![3, 4], vec![5, 6]]
        );
        let tuner = WarmStartTuner::from_database(&db, "MI100", RandomSearch);
        assert_eq!(tuner.seeds, vec![vec![1, 2], vec![5, 6]]);
    }
}
