//! Warm-started tuning: seed the search with known-good configurations.
//!
//! The paper's portability study (Fig. 5) shows optimal configurations
//! transfer between architectures at 58.5–99.9% of optimal — too lossy to
//! use *as is*, but far better than a random starting point. The
//! actionable consequence is transfer tuning: evaluate the configurations
//! that were optimal on other architectures first, then continue with a
//! normal tuner. This wrapper implements exactly that, sharing one budget
//! between the seed evaluations and the inner tuner.

use bat_core::{Evaluator, TuningRun};

use crate::tuner::{record_eval, Recorded, Tuner};

/// Wraps any [`Tuner`] with a list of seed configurations that are
/// evaluated before the inner search starts.
///
/// Seeds that are not exactly representable in the target space (a value
/// missing from a parameter's list) are skipped without consuming budget —
/// the cross-architecture case where a space differs per platform.
pub struct WarmStartTuner<T: Tuner> {
    /// Configurations to evaluate first (e.g. optima from other GPUs).
    pub seeds: Vec<Vec<i64>>,
    /// The tuner that continues after the seeds.
    pub inner: T,
    name: String,
}

impl<T: Tuner> WarmStartTuner<T> {
    /// Wrap `inner`, evaluating `seeds` first.
    pub fn new(seeds: Vec<Vec<i64>>, inner: T) -> Self {
        let name = format!("warmstart+{}", inner.name());
        WarmStartTuner { seeds, inner, name }
    }
}

impl<T: Tuner> Tuner for WarmStartTuner<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let space = eval.problem().space();
        // Evaluate representable seeds against the shared budget.
        let mut prefix = crate::tuner::new_run(eval, self.name(), seed);
        for cfg in &self.seeds {
            let Some(idx) = space.index_of(cfg) else {
                continue; // not representable here: skip for free
            };
            if matches!(record_eval(eval, &mut prefix, idx), Recorded::Exhausted) {
                return prefix;
            }
        }
        // Hand the evaluator (budget already partly spent, cache warm) to
        // the inner tuner and splice the histories.
        let inner_run = self.inner.tune(eval, seed);
        for mut t in inner_run.trials {
            t.eval = prefix.trials.len() as u64 + 1;
            prefix.push(t);
        }
        prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSearch;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 31))
            .param(Param::int_range("y", 0, 31))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl", "sim", space, |v| {
            Ok(1.0 + ((v[0] - 20) * (v[0] - 20) + (v[1] - 13) * (v[1] - 13)) as f64)
        })
    }

    #[test]
    fn seeds_are_evaluated_first_in_order() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(20);
        let tuner = WarmStartTuner::new(vec![vec![5, 5], vec![20, 13]], RandomSearch);
        let run = tuner.tune(&eval, 0);
        assert_eq!(run.trials.len(), 20);
        assert_eq!(run.trials[0].config, vec![5, 5]);
        assert_eq!(run.trials[1].config, vec![20, 13]);
        // The second seed is the optimum: best is found at evaluation 2.
        assert_eq!(run.best().unwrap().config, vec![20, 13]);
        assert_eq!(run.tuner, "warmstart+random-search");
    }

    #[test]
    fn unrepresentable_seeds_are_skipped_for_free() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(10);
        // 99 is not a value of either parameter.
        let tuner = WarmStartTuner::new(vec![vec![99, 99], vec![7, 7]], RandomSearch);
        let run = tuner.tune(&eval, 1);
        assert_eq!(run.trials.len(), 10);
        assert_eq!(run.trials[0].config, vec![7, 7]);
    }

    #[test]
    fn budget_shared_between_seeds_and_inner() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(3);
        let seeds: Vec<Vec<i64>> = (0..5).map(|i| vec![i, i]).collect();
        let run = WarmStartTuner::new(seeds, RandomSearch).tune(&eval, 0);
        // Only 3 of the 5 seeds fit the budget; inner never runs.
        assert_eq!(run.trials.len(), 3);
        assert_eq!(run.trials[2].config, vec![2, 2]);
    }

    #[test]
    fn good_seed_beats_cold_start_at_tiny_budget() {
        let p = problem();
        let budget = 8;
        let cold = {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            RandomSearch
                .tune(&eval, 3)
                .best()
                .unwrap()
                .time_ms()
                .unwrap()
        };
        let warm = {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            // A near-optimal transfer seed (one off the optimum).
            WarmStartTuner::new(vec![vec![19, 13]], RandomSearch)
                .tune(&eval, 3)
                .best()
                .unwrap()
                .time_ms()
                .unwrap()
        };
        assert!(warm <= cold, "warm {warm} vs cold {cold}");
        assert!(warm <= 2.0, "transfer seed value not exploited: {warm}");
    }

    #[test]
    fn empty_seed_list_degenerates_to_inner() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(15);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(15);
        let warm = WarmStartTuner::new(vec![], RandomSearch).tune(&e1, 9);
        let plain = RandomSearch.tune(&e2, 9);
        let wi: Vec<u64> = warm.trials.iter().map(|t| t.index).collect();
        let pi: Vec<u64> = plain.trials.iter().map(|t| t.index).collect();
        assert_eq!(wi, pi);
    }
}
