//! Genetic algorithm over ordinal position vectors.

use bat_core::{Evaluator, TuningRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Steady-state GA: tournament selection, uniform crossover, per-coordinate
/// mutation, elitist replacement.
#[derive(Debug, Clone, Copy)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-coordinate mutation probability.
    pub mutation_rate: f64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: 20,
            tournament: 3,
            mutation_rate: 0.1,
        }
    }
}

struct Individual {
    pos: Vec<usize>,
    fitness: f64, // +inf for failed configs
}

impl Tuner for GeneticAlgorithm {
    fn name(&self) -> &str {
        "genetic-algorithm"
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        assert!(self.population >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();

        // Initial population.
        let mut pop: Vec<Individual> = Vec::with_capacity(self.population);
        while pop.len() < self.population {
            let pos = ordinal::random_positions(space, &mut rng);
            let idx = ordinal::index_of(space, &pos);
            match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => return run,
                Recorded::Failed => pop.push(Individual {
                    pos,
                    fitness: f64::INFINITY,
                }),
                Recorded::Ok(v) => pop.push(Individual { pos, fitness: v }),
            }
        }

        loop {
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng, pop: &[Individual]| -> usize {
                let mut best = rng.random_range(0..pop.len());
                for _ in 1..self.tournament {
                    let c = rng.random_range(0..pop.len());
                    if pop[c].fitness < pop[best].fitness {
                        best = c;
                    }
                }
                best
            };
            let pa = pick(&mut rng, &pop);
            let pb = pick(&mut rng, &pop);

            // Uniform crossover + mutation.
            let mut child: Vec<usize> = pop[pa]
                .pos
                .iter()
                .zip(&pop[pb].pos)
                .map(|(&a, &b)| if rng.random_bool(0.5) { a } else { b })
                .collect();
            for (i, c) in child.iter_mut().enumerate() {
                if rng.random_bool(self.mutation_rate) {
                    let len = space.params()[i].len();
                    *c = rng.random_range(0..len);
                }
            }

            let idx = ordinal::index_of(space, &child);
            let fitness = match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => break,
                Recorded::Failed => f64::INFINITY,
                Recorded::Ok(v) => v,
            };

            // Replace the worst individual (elitism: never remove the best).
            let worst = pop
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.fitness.partial_cmp(&b.1.fitness).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if fitness < pop[worst].fitness {
                pop[worst] = Individual {
                    pos: child,
                    fitness,
                };
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("a", 0, 9))
            .param(Param::int_range("b", 0, 9))
            .param(Param::int_range("c", 0, 9))
            .param(Param::int_range("d", 0, 9))
            .restrict("a + b + c + d <= 30")
            .build()
            .unwrap();
        SyntheticProblem::new("sum", "sim", space, |v| {
            // Optimum at (9, 9, 9, 0): maximize a+b+c, minimize d.
            Ok(1.0 + (27 - (v[0] + v[1] + v[2])) as f64 + v[3] as f64)
        })
    }

    #[test]
    fn converges_to_good_region() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_200);
        let run = GeneticAlgorithm::default().tune(&eval, 2);
        let best = run.best().unwrap().time_ms().unwrap();
        assert!(best <= 3.0, "GA should approach optimum, got {best}");
    }

    #[test]
    fn handles_restricted_configs_gracefully() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
        let run = GeneticAlgorithm::default().tune(&eval, 7);
        // Some trials fail the a+b+c+d<=30 restriction, but the run proceeds.
        assert!(run.successes() > 0);
        assert!(run.trials.len() == 300);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(150);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(150);
        assert_eq!(
            GeneticAlgorithm::default().tune(&e1, 4),
            GeneticAlgorithm::default().tune(&e2, 4)
        );
    }
}
