//! Genetic algorithm over ordinal position vectors.
//!
//! Ask/tell form: the initial population is asked in whole batches (its
//! genomes never depend on earlier measurements), and the steady-state
//! phase breeds up to `batch` children per step from the current
//! population snapshot, folding their fitnesses back in told order. At
//! `batch = 1` this is exactly the historical steady-state loop; at a
//! batch of the population size it degenerates to a generational GA —
//! the classic serial/parallel trade-off the batch axis exists to study.

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Steady-state GA: tournament selection, uniform crossover, per-coordinate
/// mutation, elitist replacement.
#[derive(Debug, Clone, Copy)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-coordinate mutation probability.
    pub mutation_rate: f64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: 20,
            tournament: 3,
            mutation_rate: 0.1,
        }
    }
}

struct Individual {
    pos: Vec<usize>,
    fitness: f64, // +inf for failed configs
}

struct GaStep<'a> {
    cfg: &'a GeneticAlgorithm,
    space: &'a ConfigSpace,
    rng: StdRng,
    pop: Vec<Individual>,
    /// Genomes asked but not yet told, in ask order.
    pending: Vec<Vec<usize>>,
}

impl GaStep<'_> {
    fn pick(&mut self) -> usize {
        let mut best = self.rng.random_range(0..self.pop.len());
        for _ in 1..self.cfg.tournament {
            let c = self.rng.random_range(0..self.pop.len());
            if self.pop[c].fitness < self.pop[best].fitness {
                best = c;
            }
        }
        best
    }

    fn breed(&mut self) -> Vec<usize> {
        let pa = self.pick();
        let pb = self.pick();
        let mut child: Vec<usize> = self.pop[pa]
            .pos
            .iter()
            .zip(&self.pop[pb].pos)
            .map(|(&a, &b)| if self.rng.random_bool(0.5) { a } else { b })
            .collect();
        for (i, c) in child.iter_mut().enumerate() {
            if self.rng.random_bool(self.cfg.mutation_rate) {
                let len = self.space.params()[i].len();
                *c = self.rng.random_range(0..len);
            }
        }
        child
    }
}

impl StepTuner for GaStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        self.pending.clear();
        if self.pop.len() < self.cfg.population {
            // Initial population: genomes are independent of measurements,
            // so whole batches are RNG-identical to the serial loop.
            let want = (self.cfg.population - self.pop.len()).min(ctx.batch);
            for _ in 0..want {
                self.pending
                    .push(ordinal::random_positions(self.space, &mut self.rng));
            }
        } else {
            for _ in 0..ctx.batch {
                let child = self.breed();
                self.pending.push(child);
            }
        }
        self.pending
            .iter()
            .map(|pos| ordinal::index_of(self.space, pos))
            .collect()
    }

    fn tell(&mut self, results: &[Told]) {
        let initializing = self.pop.len() < self.cfg.population;
        for (pos, r) in self.pending.drain(..).zip(results) {
            let fitness = r.value().unwrap_or(f64::INFINITY);
            if initializing {
                self.pop.push(Individual { pos, fitness });
            } else {
                // Replace the worst individual (elitism: never remove the
                // best), one told child at a time.
                let worst = self
                    .pop
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.fitness.partial_cmp(&b.1.fitness).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                if fitness < self.pop[worst].fitness {
                    self.pop[worst] = Individual { pos, fitness };
                }
            }
        }
    }
}

impl GeneticAlgorithm {
    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        assert!(self.population >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();

        // Initial population.
        let mut pop: Vec<Individual> = Vec::with_capacity(self.population);
        while pop.len() < self.population {
            let pos = ordinal::random_positions(space, &mut rng);
            let idx = ordinal::index_of(space, &pos);
            match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => return run,
                Recorded::Failed => pop.push(Individual {
                    pos,
                    fitness: f64::INFINITY,
                }),
                Recorded::Ok(v) => pop.push(Individual { pos, fitness: v }),
            }
        }

        loop {
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng, pop: &[Individual]| -> usize {
                let mut best = rng.random_range(0..pop.len());
                for _ in 1..self.tournament {
                    let c = rng.random_range(0..pop.len());
                    if pop[c].fitness < pop[best].fitness {
                        best = c;
                    }
                }
                best
            };
            let pa = pick(&mut rng, &pop);
            let pb = pick(&mut rng, &pop);

            // Uniform crossover + mutation.
            let mut child: Vec<usize> = pop[pa]
                .pos
                .iter()
                .zip(&pop[pb].pos)
                .map(|(&a, &b)| if rng.random_bool(0.5) { a } else { b })
                .collect();
            for (i, c) in child.iter_mut().enumerate() {
                if rng.random_bool(self.mutation_rate) {
                    let len = space.params()[i].len();
                    *c = rng.random_range(0..len);
                }
            }

            let idx = ordinal::index_of(space, &child);
            let fitness = match record_eval(eval, &mut run, idx) {
                Recorded::Exhausted => break,
                Recorded::Failed => f64::INFINITY,
                Recorded::Ok(v) => v,
            };

            // Replace the worst individual (elitism: never remove the best).
            let worst = pop
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.fitness.partial_cmp(&b.1.fitness).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if fitness < pop[worst].fitness {
                pop[worst] = Individual {
                    pos: child,
                    fitness,
                };
            }
        }
        run
    }
}

impl Tuner for GeneticAlgorithm {
    fn name(&self) -> &str {
        "genetic-algorithm"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        assert!(self.population >= 2);
        Box::new(GaStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            pop: Vec::with_capacity(self.population),
            pending: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("a", 0, 9))
            .param(Param::int_range("b", 0, 9))
            .param(Param::int_range("c", 0, 9))
            .param(Param::int_range("d", 0, 9))
            .restrict("a + b + c + d <= 30")
            .build()
            .unwrap();
        SyntheticProblem::new("sum", "sim", space, |v| {
            // Optimum at (9, 9, 9, 0): maximize a+b+c, minimize d.
            Ok(1.0 + (27 - (v[0] + v[1] + v[2])) as f64 + v[3] as f64)
        })
    }

    #[test]
    fn converges_to_good_region() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(1_200);
        let run = GeneticAlgorithm::default().tune(&eval, 2);
        let best = run.best().unwrap().time_ms().unwrap();
        assert!(best <= 3.0, "GA should approach optimum, got {best}");
    }

    #[test]
    fn handles_restricted_configs_gracefully() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
        let run = GeneticAlgorithm::default().tune(&eval, 7);
        // Some trials fail the a+b+c+d<=30 restriction, but the run proceeds.
        assert!(run.successes() > 0);
        assert!(run.trials.len() == 300);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(150);
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(150);
        assert_eq!(
            GeneticAlgorithm::default().tune(&e1, 4),
            GeneticAlgorithm::default().tune(&e2, 4)
        );
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = problem();
        let ga = GeneticAlgorithm::default();
        for seed in 0..6 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(200);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(200);
            assert_eq!(ga.tune(&e1, seed), ga.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn generation_batches_breed_and_converge() {
        let p = problem();
        // batch == population: a fully generational GA.
        let protocol = Protocol::noiseless().with_batch(20);
        let e1 = Evaluator::with_protocol(&p, protocol).with_budget(1_200);
        let e2 = Evaluator::with_protocol(&p, protocol).with_budget(1_200);
        let a = GeneticAlgorithm::default().tune(&e1, 2);
        let b = GeneticAlgorithm::default().tune(&e2, 2);
        assert_eq!(a, b);
        assert_eq!(a.trials.len(), 1_200);
        assert!(a.best().unwrap().time_ms().unwrap() <= 4.0);
    }
}
