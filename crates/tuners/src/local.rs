//! Local search: hill climbers, multi-start and iterated variants.
//!
//! The fitness-flow-graph analysis (Fig. 3) models exactly the randomized
//! first-improvement hill climber implemented here, so tuner behaviour and
//! landscape metric line up.
//!
//! All variants are expressed as ask/tell state machines around one shared
//! [`Descent`] core. At `batch = 1` they replay the historical pull loops
//! bit-exactly; at larger batches they speculate — first-improvement
//! evaluates a whole window of the shuffled neighbourhood at once and
//! takes the first improving member, best-improvement simply fills its
//! full-neighbourhood scan in parallel-sized bites.

use bat_core::{Evaluator, TuningRun};
use bat_space::{ConfigSpace, Neighborhood};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::step::{StepCtx, StepTuner, Told};
use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Neighbour-acceptance strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Move to the first strictly-better neighbour (visiting neighbours in
    /// random order) — the FFG walker of Schoonhoven et al.
    FirstImprovement,
    /// Evaluate all neighbours, move to the best.
    BestImprovement,
}

/// Multi-start local search: descend to a local minimum, restart from a
/// fresh random configuration, repeat until the budget runs out.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    /// Acceptance strategy.
    pub strategy: Strategy,
    /// Neighbourhood structure.
    pub neighborhood: Neighborhood,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            strategy: Strategy::FirstImprovement,
            neighborhood: Neighborhood::HammingAny,
        }
    }
}

/// One in-progress descent: the step-protocol form of the classic
/// "shuffle neighbours, walk to an improvement" inner loop, shared by
/// local search, iterated local search and basin hopping.
pub(crate) struct Descent {
    strategy: Strategy,
    neighborhood: Neighborhood,
    current: u64,
    current_val: f64,
    neighbors: Vec<u64>,
    cursor: usize,
    best_neighbor: Option<(u64, f64)>,
}

impl Descent {
    /// Start a descent at `start` (already measured at `start_val`):
    /// computes and shuffles its neighbourhood, exactly where the classic
    /// loop did.
    pub(crate) fn begin(
        space: &ConfigSpace,
        strategy: Strategy,
        neighborhood: Neighborhood,
        rng: &mut StdRng,
        start: u64,
        start_val: f64,
    ) -> Descent {
        let mut neighbors = neighborhood.neighbor_indices(space, start);
        neighbors.shuffle(rng);
        Descent {
            strategy,
            neighborhood,
            current: start,
            current_val: start_val,
            neighbors,
            cursor: 0,
            best_neighbor: None,
        }
    }

    /// True when the current point has no (remaining) neighbours at all —
    /// it is trivially a local minimum.
    pub(crate) fn stuck(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The local minimum this descent is parked at (valid when finished).
    pub(crate) fn minimum(&self) -> (u64, f64) {
        (self.current, self.current_val)
    }

    /// Next window of unevaluated neighbours, at most `batch` of them.
    pub(crate) fn ask(&mut self, batch: usize) -> Vec<u64> {
        let end = (self.cursor + batch).min(self.neighbors.len());
        self.neighbors[self.cursor..end].to_vec()
    }

    fn move_to(&mut self, space: &ConfigSpace, rng: &mut StdRng, n: u64, v: f64) {
        self.current = n;
        self.current_val = v;
        self.neighbors = self.neighborhood.neighbor_indices(space, n);
        self.neighbors.shuffle(rng);
        self.cursor = 0;
        self.best_neighbor = None;
    }

    /// Digest a window of neighbour outcomes. Returns the local minimum
    /// when the descent terminated, `None` while it continues (possibly
    /// having moved, discarding the rest of a speculative window).
    pub(crate) fn tell(
        &mut self,
        space: &ConfigSpace,
        rng: &mut StdRng,
        results: &[Told],
    ) -> Option<(u64, f64)> {
        for r in results {
            match r.value() {
                None => self.cursor += 1,
                Some(v) => match self.strategy {
                    Strategy::FirstImprovement => {
                        if v < self.current_val {
                            self.move_to(space, rng, r.index, v);
                            return None;
                        }
                        self.cursor += 1;
                    }
                    Strategy::BestImprovement => {
                        if v < self.best_neighbor.map_or(self.current_val, |(_, bv)| bv) {
                            self.best_neighbor = Some((r.index, v));
                        }
                        self.cursor += 1;
                    }
                },
            }
            if self.cursor >= self.neighbors.len() {
                // Whole neighbourhood seen.
                if let Some((n, v)) = self.best_neighbor.take() {
                    self.move_to(space, rng, n, v);
                    return None;
                }
                return Some((self.current, self.current_val));
            }
        }
        None
    }
}

enum LsState {
    /// Drawing random starting points.
    Start,
    /// Descending from the last successful start.
    Descending(Descent),
}

struct LocalSearchStep<'a> {
    cfg: &'a LocalSearch,
    space: &'a ConfigSpace,
    rng: StdRng,
    card: u64,
    state: LsState,
}

impl StepTuner for LocalSearchStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        loop {
            match &mut self.state {
                LsState::Start => {
                    return (0..ctx.batch)
                        .map(|_| self.rng.random_range(0..self.card))
                        .collect();
                }
                LsState::Descending(d) => {
                    if d.stuck() {
                        self.state = LsState::Start; // local minimum: restart
                        continue;
                    }
                    return d.ask(ctx.batch);
                }
            }
        }
    }

    fn tell(&mut self, results: &[Told]) {
        match &mut self.state {
            LsState::Start => {
                for r in results {
                    if let Some(v) = r.value() {
                        self.state = LsState::Descending(Descent::begin(
                            self.space,
                            self.cfg.strategy,
                            self.cfg.neighborhood,
                            &mut self.rng,
                            r.index,
                            v,
                        ));
                        break;
                    }
                }
            }
            LsState::Descending(d) => {
                if d.tell(self.space, &mut self.rng, results).is_some() {
                    self.state = LsState::Start;
                }
            }
        }
    }
}

impl LocalSearch {
    /// Descend from `start`; returns the local-minimum index and its value,
    /// or `None` when the budget died mid-descent. (Reference-oracle form.)
    pub(crate) fn reference_descend(
        &self,
        eval: &Evaluator<'_>,
        run: &mut TuningRun,
        rng: &mut StdRng,
        start: u64,
        start_val: f64,
    ) -> Option<(u64, f64)> {
        let space = eval.problem().space();
        let mut current = start;
        let mut current_val = start_val;
        loop {
            let mut neighbors = self.neighborhood.neighbor_indices(space, current);
            neighbors.shuffle(rng);
            let mut moved = false;
            let mut best_neighbor: Option<(u64, f64)> = None;
            for n in neighbors {
                match record_eval(eval, run, n) {
                    Recorded::Exhausted => return None,
                    Recorded::Failed => {}
                    Recorded::Ok(v) => match self.strategy {
                        Strategy::FirstImprovement => {
                            if v < current_val {
                                current = n;
                                current_val = v;
                                moved = true;
                                break;
                            }
                        }
                        Strategy::BestImprovement => {
                            if v < best_neighbor.map_or(current_val, |(_, bv)| bv) {
                                best_neighbor = Some((n, v));
                            }
                        }
                    },
                }
            }
            if self.strategy == Strategy::BestImprovement {
                if let Some((n, v)) = best_neighbor {
                    current = n;
                    current_val = v;
                    moved = true;
                }
            }
            if !moved {
                return Some((current, current_val));
            }
        }
    }

    /// Draw a random starting point that evaluates successfully; records
    /// the failed draws too. (Reference-oracle form.)
    pub(crate) fn reference_random_start(
        &self,
        eval: &Evaluator<'_>,
        run: &mut TuningRun,
        rng: &mut StdRng,
    ) -> Option<(u64, f64)> {
        let card = eval.problem().space().cardinality();
        loop {
            let idx = rng.random_range(0..card);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => return None,
                Recorded::Failed => {}
                Recorded::Ok(v) => return Some((idx, v)),
            }
        }
    }

    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        while eval.has_budget() {
            let Some((start, val)) = self.reference_random_start(eval, &mut run, &mut rng) else {
                break;
            };
            if self
                .reference_descend(eval, &mut run, &mut rng, start, val)
                .is_none()
            {
                break;
            }
        }
        run
    }
}

impl Tuner for LocalSearch {
    fn name(&self) -> &str {
        match self.strategy {
            Strategy::FirstImprovement => "mls-first-improvement",
            Strategy::BestImprovement => "mls-best-improvement",
        }
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(LocalSearchStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
            state: LsState::Start,
        })
    }
}

/// Iterated local search (the "GreedyILS" family): descend, then *perturb*
/// the local minimum by a short random walk and descend again, keeping the
/// perturbed result only if it improves.
#[derive(Debug, Clone, Copy)]
pub struct IteratedLocalSearch {
    /// Inner local search.
    pub inner: LocalSearch,
    /// Perturbation strength (random single-parameter moves).
    pub perturbation: usize,
}

impl Default for IteratedLocalSearch {
    fn default() -> Self {
        IteratedLocalSearch {
            inner: LocalSearch::default(),
            perturbation: 3,
        }
    }
}

enum IlsState {
    /// Drawing the initial random point.
    Start,
    /// First descent (establishes `home` unconditionally).
    InitialDescent(Descent),
    /// Proposing perturbations of `home`.
    Perturb,
    /// Descending from an accepted perturbation.
    Descending(Descent),
}

struct IlsStep<'a> {
    cfg: &'a IteratedLocalSearch,
    space: &'a ConfigSpace,
    rng: StdRng,
    card: u64,
    home: Option<(u64, f64)>,
    state: IlsState,
}

impl IlsStep<'_> {
    fn perturbed_candidate(&mut self) -> u64 {
        let (home, _) = self.home.expect("perturbing requires a home");
        let mut pos = ordinal::positions_of(self.space, home);
        for _ in 0..self.cfg.perturbation {
            ordinal::mutate_one(self.space, &mut pos, &mut self.rng);
        }
        ordinal::index_of(self.space, &pos)
    }
}

impl StepTuner for IlsStep<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        loop {
            match &mut self.state {
                IlsState::Start => {
                    return (0..ctx.batch)
                        .map(|_| self.rng.random_range(0..self.card))
                        .collect();
                }
                IlsState::Perturb => {
                    return (0..ctx.batch).map(|_| self.perturbed_candidate()).collect();
                }
                IlsState::InitialDescent(d) => {
                    if d.stuck() {
                        self.home = Some(d.minimum());
                        self.state = IlsState::Perturb;
                        continue;
                    }
                    return d.ask(ctx.batch);
                }
                IlsState::Descending(d) => {
                    if d.stuck() {
                        let (idx, v) = d.minimum();
                        if v < self.home.expect("home set").1 {
                            self.home = Some((idx, v));
                        }
                        self.state = IlsState::Perturb;
                        continue;
                    }
                    return d.ask(ctx.batch);
                }
            }
        }
    }

    fn tell(&mut self, results: &[Told]) {
        match &mut self.state {
            IlsState::Start => {
                for r in results {
                    if let Some(v) = r.value() {
                        self.state = IlsState::InitialDescent(Descent::begin(
                            self.space,
                            self.cfg.inner.strategy,
                            self.cfg.inner.neighborhood,
                            &mut self.rng,
                            r.index,
                            v,
                        ));
                        break;
                    }
                }
            }
            IlsState::Perturb => {
                for r in results {
                    if let Some(v) = r.value() {
                        self.state = IlsState::Descending(Descent::begin(
                            self.space,
                            self.cfg.inner.strategy,
                            self.cfg.inner.neighborhood,
                            &mut self.rng,
                            r.index,
                            v,
                        ));
                        break;
                    }
                }
            }
            IlsState::InitialDescent(d) => {
                if let Some(min) = d.tell(self.space, &mut self.rng, results) {
                    self.home = Some(min);
                    self.state = IlsState::Perturb;
                }
            }
            IlsState::Descending(d) => {
                if let Some((idx, v)) = d.tell(self.space, &mut self.rng, results) {
                    if v < self.home.expect("home set").1 {
                        self.home = Some((idx, v));
                    }
                    self.state = IlsState::Perturb;
                }
            }
        }
    }
}

impl IteratedLocalSearch {
    /// The pre-ask/tell pull loop (equivalence oracle, see
    /// [`LocalSearch::reference_tune`]).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();

        let Some((start, val)) = self.inner.reference_random_start(eval, &mut run, &mut rng) else {
            return run;
        };
        let Some((mut home, mut home_val)) = self
            .inner
            .reference_descend(eval, &mut run, &mut rng, start, val)
        else {
            return run;
        };

        while eval.has_budget() {
            // Perturb: `perturbation` random coordinate moves.
            let mut pos = ordinal::positions_of(space, home);
            for _ in 0..self.perturbation {
                ordinal::mutate_one(space, &mut pos, &mut rng);
            }
            let candidate = ordinal::index_of(space, &pos);
            let cand_val = match record_eval(eval, &mut run, candidate) {
                Recorded::Exhausted => break,
                Recorded::Failed => continue,
                Recorded::Ok(v) => v,
            };
            match self
                .inner
                .reference_descend(eval, &mut run, &mut rng, candidate, cand_val)
            {
                None => break,
                Some((idx, v)) => {
                    if v < home_val {
                        home = idx;
                        home_val = v;
                    }
                }
            }
        }
        run
    }
}

impl Tuner for IteratedLocalSearch {
    fn name(&self) -> &str {
        "greedy-ils"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(IlsStep {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            card: space.cardinality(),
            home: None,
            state: IlsState::Start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn convex_problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 15))
            .param(Param::int_range("y", 0, 15))
            .param(Param::int_range("z", 0, 15))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl", "sim", space, |c| {
            Ok(1.0
                + ((c[0] - 9) * (c[0] - 9) + (c[1] - 2) * (c[1] - 2) + (c[2] - 13) * (c[2] - 13))
                    as f64)
        })
    }

    #[test]
    fn first_improvement_reaches_optimum_on_convex_landscape() {
        let p = convex_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(2_000);
        let run = LocalSearch::default().tune(&eval, 5);
        assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
    }

    #[test]
    fn best_improvement_reaches_optimum_too() {
        let p = convex_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(3_000);
        let run = LocalSearch {
            strategy: Strategy::BestImprovement,
            neighborhood: Neighborhood::HammingAny,
        }
        .tune(&eval, 5);
        assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
    }

    #[test]
    fn local_search_beats_random_on_smooth_landscape_with_small_budget() {
        let p = convex_problem();
        let budget = 150;
        let e_ls = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
        let e_rs = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
        let ls_best: f64 = (0..5)
            .map(|s| {
                LocalSearch::default()
                    .tune(&e_ls, s)
                    .best()
                    .map_or(f64::INFINITY, |t| t.time_ms().unwrap())
            })
            .fold(f64::INFINITY, f64::min);
        let rs_best: f64 = (0..5)
            .map(|s| {
                crate::random::RandomSearch
                    .tune(&e_rs, s)
                    .best()
                    .map_or(f64::INFINITY, |t| t.time_ms().unwrap())
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            ls_best <= rs_best,
            "local search {ls_best} should beat random {rs_best}"
        );
    }

    #[test]
    fn ils_reaches_optimum() {
        let p = convex_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(2_000);
        let run = IteratedLocalSearch::default().tune(&eval, 11);
        assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
    }

    #[test]
    fn respects_budget_exactly() {
        let p = convex_problem();
        for budget in [1u64, 7, 33] {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = LocalSearch::default().tune(&eval, 1);
            assert_eq!(run.trials.len() as u64, budget);
        }
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = convex_problem();
        for seed in 0..6 {
            for tuner in [
                LocalSearch::default(),
                LocalSearch {
                    strategy: Strategy::BestImprovement,
                    ..LocalSearch::default()
                },
            ] {
                let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
                let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
                assert_eq!(tuner.tune(&e1, seed), tuner.reference_tune(&e2, seed));
            }
            let ils = IteratedLocalSearch::default();
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(300);
            assert_eq!(ils.tune(&e1, seed), ils.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn batched_local_search_still_descends() {
        let p = convex_problem();
        for batch in [2u32, 8, 32] {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless().with_batch(batch))
                .with_budget(2_000);
            let run = LocalSearch::default().tune(&eval, 5);
            assert_eq!(run.trials.len(), 2_000);
            assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
        }
    }
}
