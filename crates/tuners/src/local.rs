//! Local search: hill climbers, multi-start and iterated variants.
//!
//! The fitness-flow-graph analysis (Fig. 3) models exactly the randomized
//! first-improvement hill climber implemented here, so tuner behaviour and
//! landscape metric line up.

use bat_core::{Evaluator, TuningRun};
use bat_space::Neighborhood;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::tuner::{new_run, ordinal, record_eval, Recorded, Tuner};

/// Neighbour-acceptance strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Move to the first strictly-better neighbour (visiting neighbours in
    /// random order) — the FFG walker of Schoonhoven et al.
    FirstImprovement,
    /// Evaluate all neighbours, move to the best.
    BestImprovement,
}

/// Multi-start local search: descend to a local minimum, restart from a
/// fresh random configuration, repeat until the budget runs out.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    /// Acceptance strategy.
    pub strategy: Strategy,
    /// Neighbourhood structure.
    pub neighborhood: Neighborhood,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            strategy: Strategy::FirstImprovement,
            neighborhood: Neighborhood::HammingAny,
        }
    }
}

impl LocalSearch {
    /// Descend from `start`; returns the local-minimum index and its value,
    /// or `None` when the budget died mid-descent.
    fn descend(
        &self,
        eval: &Evaluator<'_>,
        run: &mut TuningRun,
        rng: &mut StdRng,
        start: u64,
        start_val: f64,
    ) -> Option<(u64, f64)> {
        let space = eval.problem().space();
        let mut current = start;
        let mut current_val = start_val;
        loop {
            let mut neighbors = self.neighborhood.neighbor_indices(space, current);
            neighbors.shuffle(rng);
            let mut moved = false;
            let mut best_neighbor: Option<(u64, f64)> = None;
            for n in neighbors {
                match record_eval(eval, run, n) {
                    Recorded::Exhausted => return None,
                    Recorded::Failed => {}
                    Recorded::Ok(v) => match self.strategy {
                        Strategy::FirstImprovement => {
                            if v < current_val {
                                current = n;
                                current_val = v;
                                moved = true;
                                break;
                            }
                        }
                        Strategy::BestImprovement => {
                            if v < best_neighbor.map_or(current_val, |(_, bv)| bv) {
                                best_neighbor = Some((n, v));
                            }
                        }
                    },
                }
            }
            if self.strategy == Strategy::BestImprovement {
                if let Some((n, v)) = best_neighbor {
                    current = n;
                    current_val = v;
                    moved = true;
                }
            }
            if !moved {
                return Some((current, current_val));
            }
        }
    }

    /// Draw a random starting point that evaluates successfully; records
    /// the failed draws too.
    fn random_start(
        &self,
        eval: &Evaluator<'_>,
        run: &mut TuningRun,
        rng: &mut StdRng,
    ) -> Option<(u64, f64)> {
        let card = eval.problem().space().cardinality();
        loop {
            let idx = rng.random_range(0..card);
            match record_eval(eval, run, idx) {
                Recorded::Exhausted => return None,
                Recorded::Failed => {}
                Recorded::Ok(v) => return Some((idx, v)),
            }
        }
    }
}

impl Tuner for LocalSearch {
    fn name(&self) -> &str {
        match self.strategy {
            Strategy::FirstImprovement => "mls-first-improvement",
            Strategy::BestImprovement => "mls-best-improvement",
        }
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        while eval.has_budget() {
            let Some((start, val)) = self.random_start(eval, &mut run, &mut rng) else {
                break;
            };
            if self.descend(eval, &mut run, &mut rng, start, val).is_none() {
                break;
            }
        }
        run
    }
}

/// Iterated local search (the "GreedyILS" family): descend, then *perturb*
/// the local minimum by a short random walk and descend again, keeping the
/// perturbed result only if it improves.
#[derive(Debug, Clone, Copy)]
pub struct IteratedLocalSearch {
    /// Inner local search.
    pub inner: LocalSearch,
    /// Perturbation strength (random single-parameter moves).
    pub perturbation: usize,
}

impl Default for IteratedLocalSearch {
    fn default() -> Self {
        IteratedLocalSearch {
            inner: LocalSearch::default(),
            perturbation: 3,
        }
    }
}

impl Tuner for IteratedLocalSearch {
    fn name(&self) -> &str {
        "greedy-ils"
    }

    fn tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let space = eval.problem().space();

        let Some((start, val)) = self.inner.random_start(eval, &mut run, &mut rng) else {
            return run;
        };
        let Some((mut home, mut home_val)) =
            self.inner.descend(eval, &mut run, &mut rng, start, val)
        else {
            return run;
        };

        while eval.has_budget() {
            // Perturb: `perturbation` random coordinate moves.
            let mut pos = ordinal::positions_of(space, home);
            for _ in 0..self.perturbation {
                ordinal::mutate_one(space, &mut pos, &mut rng);
            }
            let candidate = ordinal::index_of(space, &pos);
            let cand_val = match record_eval(eval, &mut run, candidate) {
                Recorded::Exhausted => break,
                Recorded::Failed => continue,
                Recorded::Ok(v) => v,
            };
            match self
                .inner
                .descend(eval, &mut run, &mut rng, candidate, cand_val)
            {
                None => break,
                Some((idx, v)) => {
                    if v < home_val {
                        home = idx;
                        home_val = v;
                    }
                }
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{Evaluator, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    fn convex_problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 15))
            .param(Param::int_range("y", 0, 15))
            .param(Param::int_range("z", 0, 15))
            .build()
            .unwrap();
        SyntheticProblem::new("bowl", "sim", space, |c| {
            Ok(1.0
                + ((c[0] - 9) * (c[0] - 9) + (c[1] - 2) * (c[1] - 2) + (c[2] - 13) * (c[2] - 13))
                    as f64)
        })
    }

    #[test]
    fn first_improvement_reaches_optimum_on_convex_landscape() {
        let p = convex_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(2_000);
        let run = LocalSearch::default().tune(&eval, 5);
        assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
    }

    #[test]
    fn best_improvement_reaches_optimum_too() {
        let p = convex_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(3_000);
        let run = LocalSearch {
            strategy: Strategy::BestImprovement,
            neighborhood: Neighborhood::HammingAny,
        }
        .tune(&eval, 5);
        assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
    }

    #[test]
    fn local_search_beats_random_on_smooth_landscape_with_small_budget() {
        let p = convex_problem();
        let budget = 150;
        let e_ls = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
        let e_rs = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
        let ls_best: f64 = (0..5)
            .map(|s| {
                LocalSearch::default()
                    .tune(&e_ls, s)
                    .best()
                    .map_or(f64::INFINITY, |t| t.time_ms().unwrap())
            })
            .fold(f64::INFINITY, f64::min);
        let rs_best: f64 = (0..5)
            .map(|s| {
                crate::random::RandomSearch
                    .tune(&e_rs, s)
                    .best()
                    .map_or(f64::INFINITY, |t| t.time_ms().unwrap())
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            ls_best <= rs_best,
            "local search {ls_best} should beat random {rs_best}"
        );
    }

    #[test]
    fn ils_reaches_optimum() {
        let p = convex_problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(2_000);
        let run = IteratedLocalSearch::default().tune(&eval, 11);
        assert_eq!(run.best().unwrap().config, vec![9, 2, 13]);
    }

    #[test]
    fn respects_budget_exactly() {
        let p = convex_problem();
        for budget in [1u64, 7, 33] {
            let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
            let run = LocalSearch::default().tune(&eval, 1);
            assert_eq!(run.trials.len() as u64, budget);
        }
    }
}
