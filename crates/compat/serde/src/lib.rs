//! Offline stand-in for the subset of `serde` used by this workspace.
//!
//! Instead of serde's visitor-based data model, serialization here goes
//! through one concrete intermediate [`Value`] tree (the only format the
//! workspace ever uses is JSON, via the sibling `serde_json` stand-in):
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, DeError>`.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`, re-exported from
//! the `serde_derive` stand-in) generate those impls for structs with named
//! fields and for enums with unit/newtype variants, honouring the
//! `#[serde(rename)]`, `#[serde(rename_all = "snake_case")]`,
//! `#[serde(default)]`, `#[serde(skip_serializing_if = "path")]` and
//! `#[serde(deny_unknown_fields)]` attributes the workspace uses.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing tree value — the single intermediate data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (preserves `u64` values above `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// Missing required field error.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field {field:?} while deserializing {ty}"))
    }

    /// Unknown field error (emitted by `#[serde(deny_unknown_fields)]`).
    pub fn unknown_field(field: &str, ty: &str) -> DeError {
        DeError(format!("unknown field {field:?} while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the intermediate [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the intermediate [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Find `key` among object `entries` (helper used by derived code).
pub fn field<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected("non-negative integer", stringify!($t))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

/// A `Value` serializes to itself — the identity — so documents can embed
/// already-serialized subtrees (e.g. opaque record blobs) verbatim.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// A `Value` deserializes from itself — the identity — so callers can
/// parse arbitrary JSON into the tree and inspect it structurally.
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

// serde's externally-tagged representation: {"Ok": ...} / {"Err": ...}.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Object(vec![("Ok".to_string(), v.to_value())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .filter(|e| e.len() == 1)
            .ok_or_else(|| DeError::expected("single-key object", "Result"))?;
        let (tag, inner) = &entries[0];
        match tag.as_str() {
            "Ok" => T::from_value(inner).map(Ok),
            "Err" => E::from_value(inner).map(Err),
            _ => Err(DeError::expected("\"Ok\" or \"Err\" tag", "Result")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&n.to_value()).unwrap(), n);
        let r: Result<u64, String> = Err("boom".into());
        assert_eq!(Result::<u64, String>::from_value(&r.to_value()).unwrap(), r);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(i64::from_value(&Value::String("x".into())).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(Vec::<i64>::from_value(&Value::Null).is_err());
    }
}
