//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's bench targets.
//!
//! Each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a fixed measurement window; median, mean and throughput are
//! printed to stdout. Command-line arguments: any non-flag argument is a
//! substring filter on benchmark names; `--test` runs each benchmark for a
//! single iteration (used by `cargo test`-style smoke runs).
//! `BAT_BENCH_MS` overrides the measurement window per benchmark
//! (milliseconds, default 300).

use std::time::{Duration, Instant};

/// Re-export of the standard black box, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the stand-in runs setup per batch of
/// one iteration regardless, so this is informational only.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--list" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        let measure_ms = std::env::var("BAT_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            filter,
            test_mode,
            measure: Duration::from_millis(measure_ms),
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.run_one(name.as_ref(), None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name, throughput);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        let throughput = self.throughput;
        self.c.run_one(&full, throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        // Warm-up: run until ~10% of the window is spent.
        let warmup = self.measure / 10;
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measure in batches sized to ~1/50 of the window each.
        let batch = ((self.measure.as_secs_f64() / 50.0 / per_iter).ceil() as u64).max(1);
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.samples.push(0.0);
            return;
        }
        let deadline = Instant::now() + self.measure;
        let mut first = true;
        while first || Instant::now() < deadline {
            first = false;
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            return;
        }
        if self.test_mode {
            println!("{name}: ok (test mode)");
            return;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let tp = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  thrpt: {:>12}/s", si(n as f64 / median))
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  thrpt: {:>11}B/s", si(n as f64 / median))
            }
            _ => String::new(),
        };
        println!(
            "{name:<56} time: [median {:>10}  mean {:>10}]{tp}",
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            measure: Duration::from_millis(5),
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(si(5e6).ends_with('M'));
    }
}
