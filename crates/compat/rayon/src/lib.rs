//! Offline stand-in for the subset of the `rayon` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same call surface (`into_par_iter`, `par_iter`, `par_iter_mut`,
//! `par_chunks_mut`, plus `map`/`enumerate` adapters and
//! `sum`/`collect`/`for_each` terminals) backed by a lazily-initialized
//! **persistent worker pool** ([`mod@pool`]): parked OS threads claim blocks
//! of work from a shared atomic cursor, so a parallel terminal costs one
//! queue push + condvar wake instead of per-call thread creation.
//!
//! Order-preserving terminals (`collect`, `sum`) write each result directly
//! into its input slot of a pre-sized output buffer, so outputs are
//! bit-identical to the serial order no matter how blocks interleave; on a
//! single-thread pool (or inside an already-parallel region) everything
//! runs serially, which matches rayon's semantics for deterministic,
//! order-preserving pipelines. Side-effect terminals (`for_each`) schedule
//! adaptively through the same block-claiming cursor.
//!
//! Integer ranges get a dedicated lazy implementation ([`RangePar`]): the
//! range is never materialized — workers claim index windows by arithmetic
//! alone, so `(0..10u64.pow(8)).into_par_iter().map(f).sum()` only ever
//! allocates the pipeline's *outputs*.
//!
//! Thread-count control (see [`current_num_threads`] for resolution order):
//! [`set_global_threads`] (`--threads`), the `BAT_THREADS` environment
//! variable, then `available_parallelism`. [`with_thread_limit`] overrides
//! the count per calling thread, which lets tests sweep thread counts
//! inside one process.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

mod pool;

pub use pool::{current_num_threads, pool_busy_us, set_global_threads, with_thread_limit};
use pool::{worker_count, IN_PARALLEL};

/// Shared mutable output pointer for disjoint-slot writes across workers.
/// Accessed only through [`OutPtr::write`] so closures capture the wrapper
/// (with its `Sync` impl) rather than the raw pointer field.
struct OutPtr<U>(*mut MaybeUninit<U>);
// SAFETY: workers write disjoint slots (each index is claimed exactly once
// by the block cursor), and the owning terminal joins every worker before
// reading the buffer back.
unsafe impl<U: Send> Send for OutPtr<U> {}
unsafe impl<U: Send> Sync for OutPtr<U> {}

impl<U> OutPtr<U> {
    /// Write slot `i`.
    ///
    /// SAFETY: caller must hold the unique claim on index `i` and stay in
    /// bounds of the buffer the pointer was taken from.
    unsafe fn write(&self, i: usize, value: U) {
        unsafe { self.0.add(i).write(MaybeUninit::new(value)) }
    }
}

/// Shared input pointer for by-value reads of claimed items.
struct InPtr<T>(*const T);
// SAFETY: each item is `ptr::read` exactly once (disjoint block claims),
// mirroring a by-value move into the claiming worker.
unsafe impl<T: Send> Send for InPtr<T> {}
unsafe impl<T: Send> Sync for InPtr<T> {}

impl<T> InPtr<T> {
    /// Move item `i` out of the buffer.
    ///
    /// SAFETY: caller must hold the unique claim on index `i` (each item is
    /// read at most once) and stay in bounds.
    unsafe fn read(&self, i: usize) -> T {
        unsafe { std::ptr::read(self.0.add(i)) }
    }
}

/// Convert a fully-written `Vec<MaybeUninit<U>>` into `Vec<U>`.
///
/// SAFETY: caller must guarantee every slot was initialized.
unsafe fn assume_init_vec<U>(out: Vec<MaybeUninit<U>>) -> Vec<U> {
    let mut out = ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: MaybeUninit<U> and U have identical layout, and per the
    // caller's contract every element is initialized.
    unsafe { Vec::from_raw_parts(ptr.cast::<U>(), len, cap) }
}

/// Free a consumed input buffer without dropping its (moved-out) elements.
fn free_consumed<T>(mut items: ManuallyDrop<Vec<T>>) {
    // SAFETY: every element was moved out by `ptr::read`, so dropping the
    // Vec at length 0 frees the allocation without double-dropping.
    unsafe {
        items.set_len(0);
        ManuallyDrop::drop(&mut items);
    }
}

/// Apply `f` to every item, returning the results in input order. Runs on
/// the worker pool when more than one thread is available: workers claim
/// blocks of indices and write each result straight into its input slot,
/// so the output is bit-identical to the serial order.
fn run_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        let out = items.into_iter().map(f).collect();
        IN_PARALLEL.with(|c| c.set(was));
        return out;
    }
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization.
    unsafe { out.set_len(n) };
    let items = ManuallyDrop::new(items);
    let src = InPtr(items.as_ptr());
    let dst = OutPtr(out.as_mut_ptr());
    // ~8 claims per worker balances skew against cursor traffic.
    let block = (n / (workers * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    pool::run_parallel(workers, &move || loop {
        let lo = cursor.fetch_add(block, Ordering::Relaxed);
        if lo >= n {
            break;
        }
        let hi = (lo + block).min(n);
        for i in lo..hi {
            // SAFETY: index `i` belongs to exactly one claimed block, so
            // the item is moved out once and the slot written once.
            unsafe {
                let item = src.read(i);
                dst.write(i, f(item));
            }
        }
    });
    // `run_parallel` panics on worker failure before reaching this point
    // (the buffers then leak, which is safe); from here every item was
    // consumed and every slot written.
    free_consumed(items);
    // SAFETY: all `n` slots initialized by the claim loop above.
    unsafe { assume_init_vec(out) }
}

/// Apply `f` to every item with adaptive scheduling: each worker claims the
/// next pending *block* of items from a shared cursor when it drains its
/// current one, so skewed per-item costs rebalance while fine-grained
/// items (single floats, small slots) amortize the claim overhead.
/// Execution order is unspecified (side effects must not depend on it, as
/// with rayon's `for_each`), but every item runs exactly once.
fn run_for_each<T, F>(items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        items.into_iter().for_each(f);
        IN_PARALLEL.with(|c| c.set(was));
        return;
    }
    let items = ManuallyDrop::new(items);
    let src = InPtr(items.as_ptr());
    let block = (n / (workers * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    pool::run_parallel(workers, &move || loop {
        let lo = cursor.fetch_add(block, Ordering::Relaxed);
        if lo >= n {
            break;
        }
        let hi = (lo + block).min(n);
        for i in lo..hi {
            // SAFETY: each index is claimed exactly once.
            f(unsafe { src.read(i) });
        }
    });
    free_consumed(items);
}

/// A materialized "parallel" iterator: the item list plus order-preserving
/// parallel terminals.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map every item through `f` (executed at the terminal operation).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> MapIter<T, F> {
        MapIter {
            items: self.items,
            f,
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Apply `f` to every item (adaptive scheduling; execution order is
    /// unspecified).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_for_each(self.items, &f);
    }

    /// Collect the items (identity pipeline).
    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Apply `f` in parallel, keeping the `Some` results in input order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: run_map(self.items, &f).into_iter().flatten().collect(),
        }
    }

    /// Maximum item under `cmp`.
    pub fn max_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().max_by(cmp)
    }

    /// Minimum item under `cmp`.
    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().min_by(cmp)
    }
}

/// A mapped parallel pipeline (`par_iter().map(f)`).
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> MapIter<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Compose another map stage onto the pipeline.
    pub fn map<V: Send, G: Fn(U) -> V + Sync>(self, g: G) -> MapIter<T, impl Fn(T) -> V + Sync> {
        let f = self.f;
        MapIter {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Run the pipeline and collect the outputs in input order.
    pub fn collect<B: FromIterator<U>>(self) -> B {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Run the pipeline and sum the outputs.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        run_map(self.items, &self.f).into_iter().sum()
    }

    /// Run the pipeline for its side effects (adaptive scheduling).
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = self.f;
        run_for_each(self.items, &|t| g(f(t)));
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel-iterator type ([`ParIter`] for materialized
    /// sources, [`RangePar`] for lazy integer ranges).
    type Iter;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Integer types usable as lazy parallel-range items.
pub trait RangeIndex: Copy + Send + Sync {
    /// `self + k`, where `k` is an in-range offset by construction.
    fn offset(self, k: u64) -> Self;
}

/// A lazy parallel iterator over an integer range. Unlike [`ParIter`], the
/// items are never materialized: each worker derives claimed index windows
/// from `(start, len)` and streams them.
pub struct RangePar<T> {
    start: T,
    len: u64,
}

/// Stream `f` over `start..start+len`, collecting the outputs in input
/// order. Workers claim index windows from a shared cursor and write each
/// output straight into its slot, so the result is bit-identical to the
/// serial order without materializing the input range.
fn run_range_map<T, U, F>(start: T, len: u64, f: &F) -> Vec<U>
where
    T: RangeIndex,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let items = usize::try_from(len).expect("range too large to collect");
    let workers = worker_count(items);
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        let mut out = Vec::with_capacity(items);
        for k in 0..len {
            out.push(f(start.offset(k)));
        }
        IN_PARALLEL.with(|c| c.set(was));
        return out;
    }
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(items);
    // SAFETY: MaybeUninit slots need no initialization.
    unsafe { out.set_len(items) };
    let dst = OutPtr(out.as_mut_ptr());
    let block = (len / (workers as u64 * 8)).clamp(1, 65_536);
    let cursor = AtomicU64::new(0);
    let cursor = &cursor;
    pool::run_parallel(workers, &move || loop {
        let lo = cursor.fetch_add(block, Ordering::Relaxed);
        if lo >= len {
            break;
        }
        let hi = lo.saturating_add(block).min(len);
        for k in lo..hi {
            // SAFETY: window `lo..hi` is claimed exactly once, so each
            // slot is written exactly once.
            unsafe { dst.write(k as usize, f(start.offset(k))) };
        }
    });
    // SAFETY: all slots initialized (run_parallel panics on failure first,
    // leaking the buffer, which is safe).
    unsafe { assume_init_vec(out) }
}

/// Stream `f` over the range for its side effects; nothing is collected, so
/// arbitrarily long ranges cost no memory.
///
/// Scheduling is adaptive: instead of one static subrange per worker, each
/// worker claims the next `block`-sized window of the remaining range when
/// it drains its current one, so skewed per-item costs cannot strand the
/// tail of the range behind one slow worker.
fn run_range_for_each<T, F>(start: T, len: u64, f: &F)
where
    T: RangeIndex,
    F: Fn(T) + Sync,
{
    let workers = worker_count(usize::try_from(len.min(usize::MAX as u64)).unwrap_or(usize::MAX));
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        for k in 0..len {
            f(start.offset(k));
        }
        IN_PARALLEL.with(|c| c.set(was));
        return;
    }
    // ~8 claims per worker balances skew against cursor traffic; the block
    // is capped so very long ranges still rebalance frequently.
    let block = (len / (workers as u64 * 8)).clamp(1, 65_536);
    let cursor = AtomicU64::new(0);
    let cursor = &cursor;
    pool::run_parallel(workers, &move || loop {
        let lo = cursor.fetch_add(block, Ordering::Relaxed);
        if lo >= len {
            break;
        }
        let hi = lo.saturating_add(block).min(len);
        for k in lo..hi {
            f(start.offset(k));
        }
    });
}

impl<T: RangeIndex> RangePar<T> {
    /// Map every range item through `f` (executed at the terminal).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> RangeMapIter<T, F> {
        RangeMapIter {
            start: self.start,
            len: self.len,
            f,
        }
    }

    /// Apply `f` in parallel, keeping the `Some` results in input order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: run_range_map(self.start, self.len, &f)
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Apply `f` to every range item, streaming (no materialization).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_range_for_each(self.start, self.len, &f);
    }

    /// Collect the range items (identity pipeline).
    pub fn collect<B: FromIterator<T>>(self) -> B {
        (0..self.len).map(|k| self.start.offset(k)).collect()
    }

    /// Sum the range items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        (0..self.len).map(|k| self.start.offset(k)).sum()
    }
}

/// A mapped lazy range pipeline (`(a..b).into_par_iter().map(f)`).
pub struct RangeMapIter<T, F> {
    start: T,
    len: u64,
    f: F,
}

impl<T, U, F> RangeMapIter<T, F>
where
    T: RangeIndex,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Compose another map stage onto the pipeline.
    pub fn map<V: Send, G: Fn(U) -> V + Sync>(
        self,
        g: G,
    ) -> RangeMapIter<T, impl Fn(T) -> V + Sync> {
        let f = self.f;
        RangeMapIter {
            start: self.start,
            len: self.len,
            f: move |t| g(f(t)),
        }
    }

    /// Run the pipeline and collect the outputs in input order.
    pub fn collect<B: FromIterator<U>>(self) -> B {
        run_range_map(self.start, self.len, &self.f)
            .into_iter()
            .collect()
    }

    /// Run the pipeline and sum the outputs (serial, order-preserving
    /// reduction over the collected outputs, matching the eager path).
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        run_range_map(self.start, self.len, &self.f)
            .into_iter()
            .sum()
    }

    /// Run the pipeline for its side effects, streaming.
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = self.f;
        run_range_for_each(self.start, self.len, &|t| g(f(t)));
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            #[inline]
            fn offset(self, k: u64) -> Self {
                self + k as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as u64
                } else {
                    0
                };
                RangePar { start: self.start, len }
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize, i32, i64);

/// `par_iter` / `par_iter_mut` over slices.
pub trait ParallelSlice<T: Sync + Send> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
}

/// Mutable slice operations (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over mutable, contiguous, non-overlapping chunks.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

/// The traits and types `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_thread_limit;

    #[test]
    fn map_sum_matches_serial() {
        let par: u64 = (0u64..10_000).into_par_iter().map(|x| x * x).sum();
        let ser: u64 = (0u64..10_000).map(|x| x * x).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0usize..1000).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, (1usize..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn collect_preserves_order_at_every_thread_count() {
        for threads in 1..=6 {
            let v: Vec<String> = with_thread_limit(threads, || {
                (0usize..257)
                    .into_par_iter()
                    .map(|x| x.to_string())
                    .collect()
            });
            let ser: Vec<String> = (0usize..257).map(|x| x.to_string()).collect();
            assert_eq!(v, ser, "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_cover_disjointly() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for slot in c.iter_mut() {
                *slot += i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn range_filter_map_preserves_order() {
        let v: Vec<u64> = (0u64..1000)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        let ser: Vec<u64> = (0u64..1000).filter(|x| x % 3 == 0).collect();
        assert_eq!(v, ser);
    }

    #[test]
    fn range_for_each_streams_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        (0u64..100_003).into_par_iter().for_each(|x| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100_003);
        assert_eq!(sum.load(Ordering::Relaxed), 100_003 * 100_002 / 2);
    }

    #[test]
    fn signed_and_offset_ranges_work() {
        let v: Vec<i64> = (-5i64..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (-5i64..5).map(|x| x * 2).collect::<Vec<_>>());
        let s: usize = (10usize..20).into_par_iter().sum();
        assert_eq!(s, (10usize..20).sum::<usize>());
        let empty: Vec<u32> = (7u32..7).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn for_each_with_skewed_costs_covers_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 397usize;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).collect::<Vec<_>>().into_par_iter().for_each(|i| {
            // Skew: the first few items are far more expensive; adaptive
            // claiming must still run every item exactly once.
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_for_each_block_claiming_covers_uneven_lengths() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Lengths around block-size boundaries (block cap is 65_536 and the
        // claim granularity depends on worker count): every index must be
        // visited exactly once regardless of how blocks tile the range.
        for len in [1u64, 2, 7, 1023, 4096, 4099] {
            let sum = AtomicU64::new(0);
            (0..len).into_par_iter().for_each(|x| {
                sum.fetch_add(x + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), len * (len + 1) / 2, "{len}");
        }
    }

    #[test]
    fn nested_parallelism_is_serialized() {
        let out: Vec<u64> = (0u64..8)
            .into_par_iter()
            .map(|i| (0u64..100).into_par_iter().map(move |j| i + j).sum::<u64>())
            .collect();
        assert_eq!(out[0], 4950);
        assert_eq!(out[7], 4950 + 700);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                (0u64..1000).into_par_iter().for_each(|x| {
                    if x == 457 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(
            result.is_err(),
            "panic inside a parallel region must surface"
        );
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panicking job must not wedge or poison the pool for later calls.
        let _ = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                (0u64..64).into_par_iter().for_each(|_| panic!("boom"));
            });
        });
        let v: Vec<u64> =
            with_thread_limit(4, || (0u64..100).into_par_iter().map(|x| x * 3).collect());
        assert_eq!(v, (0u64..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn drop_types_are_freed_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] u64);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let items: Vec<Counted> = (0..501).map(Counted).collect();
        let lens: Vec<u64> = with_thread_limit(3, || items.into_par_iter().map(|c| c.0).collect());
        assert_eq!(lens.len(), 501);
        assert_eq!(DROPS.load(Ordering::Relaxed), 501);
    }
}
