//! Offline stand-in for the subset of the `rayon` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same call surface (`into_par_iter`, `par_iter`, `par_iter_mut`,
//! `par_chunks_mut`, plus `map`/`enumerate` adapters and
//! `sum`/`collect`/`for_each` terminals) backed by `std::thread::scope`.
//! Order-preserving terminals (`collect`, `sum`) split work into one
//! contiguous chunk per available core; on a single-core host (or inside an
//! already-parallel region) everything runs serially, which matches rayon's
//! semantics for deterministic, order-preserving pipelines.
//!
//! Side-effect terminals (`for_each`) schedule *adaptively*, approximating
//! rayon's work stealing: workers claim the next pending item (or, for lazy
//! ranges, the next block of the remaining range) from a shared atomic
//! cursor whenever they drain their current one, so a handful of expensive
//! items no longer serializes the whole pass behind one static chunk.
//!
//! Integer ranges get a dedicated lazy implementation ([`RangePar`]): the
//! range is split into per-worker subranges by arithmetic alone, so
//! `(0..10u64.pow(8)).into_par_iter().map(f).sum()` never materializes an
//! index vector — each worker streams its own contiguous window. Only the
//! pipeline's *outputs* are ever collected.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True while this thread is executing inside a parallel terminal;
    /// nested parallel calls then run serially instead of over-spawning.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Cached core count: `available_parallelism` is a syscall, and fine-grained
/// callers (e.g. the evaluator's per-batch fan-out) hit `worker_count` on
/// every parallel call.
fn cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn worker_count(items: usize) -> usize {
    if items < 2 || IN_PARALLEL.with(Cell::get) {
        return 1;
    }
    cores().min(items)
}

/// Apply `f` to every item, in order, returning the results. Runs on
/// multiple scoped threads when the host has more than one core.
fn run_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        let out = items.into_iter().map(f).collect();
        IN_PARALLEL.with(|c| c.set(was));
        return out;
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    IN_PARALLEL.with(|c| c.set(true));
                    chunk.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-compat worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Apply `f` to every item with adaptive scheduling: each worker claims the
/// next pending *block* of items from a shared cursor when it drains its
/// current one, so skewed per-item costs rebalance while fine-grained
/// items (single floats, small slots) amortize the claim overhead.
/// Execution order is unspecified (side effects must not depend on it, as
/// with rayon's `for_each`), but every item runs exactly once.
fn run_for_each<T, F>(items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        items.into_iter().for_each(f);
        IN_PARALLEL.with(|c| c.set(was));
        return;
    }
    // ~8 claims per worker; each block is taken out of its slot exactly
    // once, so the per-block lock is uncontended.
    let block = (items.len() / (workers * 8)).clamp(1, 1024);
    let mut blocks: Vec<Mutex<Vec<T>>> = Vec::with_capacity(items.len().div_ceil(block));
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(block).collect();
        if chunk.is_empty() {
            break;
        }
        blocks.push(Mutex::new(chunk));
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_PARALLEL.with(|c| c.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = blocks.get(i) else { break };
                    let chunk =
                        std::mem::take(&mut *slot.lock().expect("rayon-compat worker panicked"));
                    chunk.into_iter().for_each(f);
                }
            });
        }
    });
}

/// A materialized "parallel" iterator: the item list plus order-preserving
/// parallel terminals.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map every item through `f` (executed at the terminal operation).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> MapIter<T, F> {
        MapIter {
            items: self.items,
            f,
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Apply `f` to every item (adaptive scheduling; execution order is
    /// unspecified).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_for_each(self.items, &f);
    }

    /// Collect the items (identity pipeline).
    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Apply `f` in parallel, keeping the `Some` results in input order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: run_map(self.items, &f).into_iter().flatten().collect(),
        }
    }

    /// Maximum item under `cmp`.
    pub fn max_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().max_by(cmp)
    }

    /// Minimum item under `cmp`.
    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().min_by(cmp)
    }
}

/// A mapped parallel pipeline (`par_iter().map(f)`).
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> MapIter<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Compose another map stage onto the pipeline.
    pub fn map<V: Send, G: Fn(U) -> V + Sync>(self, g: G) -> MapIter<T, impl Fn(T) -> V + Sync> {
        let f = self.f;
        MapIter {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Run the pipeline and collect the outputs in input order.
    pub fn collect<B: FromIterator<U>>(self) -> B {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Run the pipeline and sum the outputs.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        run_map(self.items, &self.f).into_iter().sum()
    }

    /// Run the pipeline for its side effects (adaptive scheduling).
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = self.f;
        run_for_each(self.items, &|t| g(f(t)));
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel-iterator type ([`ParIter`] for materialized
    /// sources, [`RangePar`] for lazy integer ranges).
    type Iter;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Integer types usable as lazy parallel-range items.
pub trait RangeIndex: Copy + Send + Sync {
    /// `self + k`, where `k` is an in-range offset by construction.
    fn offset(self, k: u64) -> Self;
}

/// A lazy parallel iterator over an integer range. Unlike [`ParIter`], the
/// items are never materialized: each worker derives its contiguous
/// subrange from `(start, len)` and streams it.
pub struct RangePar<T> {
    start: T,
    len: u64,
}

/// Stream `f` over `start..start+len`, split across workers, collecting the
/// outputs in input order.
fn run_range_map<T, U, F>(start: T, len: u64, f: &F) -> Vec<U>
where
    T: RangeIndex,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let items = usize::try_from(len).expect("range too large to collect");
    let workers = worker_count(items);
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        let mut out = Vec::with_capacity(items);
        for k in 0..len {
            out.push(f(start.offset(k)));
        }
        IN_PARALLEL.with(|c| c.set(was));
        return out;
    }
    let chunk = len.div_ceil(workers as u64);
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers as u64)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(len);
                scope.spawn(move || {
                    IN_PARALLEL.with(|c| c.set(true));
                    let mut out = Vec::with_capacity((hi - lo) as usize);
                    for k in lo..hi {
                        out.push(f(start.offset(k)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon-compat worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Stream `f` over the range for its side effects; nothing is collected, so
/// arbitrarily long ranges cost no memory.
///
/// Scheduling is adaptive: instead of one static subrange per worker, each
/// worker claims the next `block`-sized window of the remaining range when
/// it drains its current one, so skewed per-item costs cannot strand the
/// tail of the range behind one slow worker.
fn run_range_for_each<T, F>(start: T, len: u64, f: &F)
where
    T: RangeIndex,
    F: Fn(T) + Sync,
{
    let workers = worker_count(usize::try_from(len.min(usize::MAX as u64)).unwrap_or(usize::MAX));
    if workers <= 1 {
        let was = IN_PARALLEL.with(|c| c.replace(true));
        for k in 0..len {
            f(start.offset(k));
        }
        IN_PARALLEL.with(|c| c.set(was));
        return;
    }
    // ~8 claims per worker balances skew against cursor traffic; the block
    // is capped so very long ranges still rebalance frequently.
    let block = (len / (workers as u64 * 8)).clamp(1, 65_536);
    let cursor = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_PARALLEL.with(|c| c.set(true));
                loop {
                    let lo = cursor.fetch_add(block, Ordering::Relaxed);
                    if lo >= len {
                        break;
                    }
                    let hi = lo.saturating_add(block).min(len);
                    for k in lo..hi {
                        f(start.offset(k));
                    }
                }
            });
        }
    });
}

impl<T: RangeIndex> RangePar<T> {
    /// Map every range item through `f` (executed at the terminal).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> RangeMapIter<T, F> {
        RangeMapIter {
            start: self.start,
            len: self.len,
            f,
        }
    }

    /// Apply `f` in parallel, keeping the `Some` results in input order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: run_range_map(self.start, self.len, &f)
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Apply `f` to every range item, streaming (no materialization).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_range_for_each(self.start, self.len, &f);
    }

    /// Collect the range items (identity pipeline).
    pub fn collect<B: FromIterator<T>>(self) -> B {
        (0..self.len).map(|k| self.start.offset(k)).collect()
    }

    /// Sum the range items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        (0..self.len).map(|k| self.start.offset(k)).sum()
    }
}

/// A mapped lazy range pipeline (`(a..b).into_par_iter().map(f)`).
pub struct RangeMapIter<T, F> {
    start: T,
    len: u64,
    f: F,
}

impl<T, U, F> RangeMapIter<T, F>
where
    T: RangeIndex,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Compose another map stage onto the pipeline.
    pub fn map<V: Send, G: Fn(U) -> V + Sync>(
        self,
        g: G,
    ) -> RangeMapIter<T, impl Fn(T) -> V + Sync> {
        let f = self.f;
        RangeMapIter {
            start: self.start,
            len: self.len,
            f: move |t| g(f(t)),
        }
    }

    /// Run the pipeline and collect the outputs in input order.
    pub fn collect<B: FromIterator<U>>(self) -> B {
        run_range_map(self.start, self.len, &self.f)
            .into_iter()
            .collect()
    }

    /// Run the pipeline and sum the outputs (serial, order-preserving
    /// reduction over the collected outputs, matching the eager path).
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        run_range_map(self.start, self.len, &self.f)
            .into_iter()
            .sum()
    }

    /// Run the pipeline for its side effects, streaming.
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = self.f;
        run_range_for_each(self.start, self.len, &|t| g(f(t)));
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            #[inline]
            fn offset(self, k: u64) -> Self {
                self + k as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as u64
                } else {
                    0
                };
                RangePar { start: self.start, len }
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize, i32, i64);

/// `par_iter` / `par_iter_mut` over slices.
pub trait ParallelSlice<T: Sync + Send> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
}

/// Mutable slice operations (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over mutable, contiguous, non-overlapping chunks.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

/// The traits and types `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_serial() {
        let par: u64 = (0u64..10_000).into_par_iter().map(|x| x * x).sum();
        let ser: u64 = (0u64..10_000).map(|x| x * x).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0usize..1000).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, (1usize..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_cover_disjointly() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for slot in c.iter_mut() {
                *slot += i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn range_filter_map_preserves_order() {
        let v: Vec<u64> = (0u64..1000)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        let ser: Vec<u64> = (0u64..1000).filter(|x| x % 3 == 0).collect();
        assert_eq!(v, ser);
    }

    #[test]
    fn range_for_each_streams_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        (0u64..100_003).into_par_iter().for_each(|x| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100_003);
        assert_eq!(sum.load(Ordering::Relaxed), 100_003 * 100_002 / 2);
    }

    #[test]
    fn signed_and_offset_ranges_work() {
        let v: Vec<i64> = (-5i64..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (-5i64..5).map(|x| x * 2).collect::<Vec<_>>());
        let s: usize = (10usize..20).into_par_iter().sum();
        assert_eq!(s, (10usize..20).sum::<usize>());
        let empty: Vec<u32> = (7u32..7).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn for_each_with_skewed_costs_covers_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 397usize;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).collect::<Vec<_>>().into_par_iter().for_each(|i| {
            // Skew: the first few items are far more expensive; adaptive
            // claiming must still run every item exactly once.
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_for_each_block_claiming_covers_uneven_lengths() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Lengths around block-size boundaries (block cap is 65_536 and the
        // claim granularity depends on worker count): every index must be
        // visited exactly once regardless of how blocks tile the range.
        for len in [1u64, 2, 7, 1023, 4096, 4099] {
            let sum = AtomicU64::new(0);
            (0..len).into_par_iter().for_each(|x| {
                sum.fetch_add(x + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), len * (len + 1) / 2, "{len}");
        }
    }

    #[test]
    fn nested_parallelism_is_serialized() {
        let out: Vec<u64> = (0u64..8)
            .into_par_iter()
            .map(|i| (0u64..100).into_par_iter().map(move |j| i + j).sum::<u64>())
            .collect();
        assert_eq!(out[0], 4950);
        assert_eq!(out[7], 4950 + 700);
    }
}
