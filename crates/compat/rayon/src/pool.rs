//! The persistent worker pool behind every parallel terminal.
//!
//! The original compat-rayon spawned fresh scoped OS threads on every
//! `par_iter` call; per-batch thread creation dominated small and medium
//! batches (the evaluator's batch fan-out issues thousands of them per
//! campaign). This module replaces spawn-per-call with a lazily-initialized
//! pool of *parked* OS threads that live for the process: a parallel
//! terminal injects one job, the pool's workers (plus the calling thread)
//! run it cooperatively, and the call returns when every participant is
//! done.
//!
//! A job is a borrowed `&(dyn Fn() + Sync)` closure: each participant calls
//! it exactly once, and the closure itself loops claiming blocks of work
//! from a shared atomic cursor (the same block-claiming discipline the old
//! `run_for_each` used). Because the submitting call blocks until every
//! participant has returned, the borrow is valid for as long as any worker
//! can observe it — that is the safety argument for the one lifetime
//! erasure below.
//!
//! Pool size resolution (checked once, at first parallel call):
//!   1. [`set_global_threads`] — explicit configuration (`--threads`);
//!   2. the `BAT_THREADS` environment variable;
//!   3. `std::thread::available_parallelism()`.
//!
//! [`with_thread_limit`] additionally overrides the count for calls made
//! from the current thread, without touching global state (test harnesses
//! sweep thread counts this way).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// True while this thread is executing inside a parallel terminal;
    /// nested parallel calls then run serially instead of over-spawning.
    /// Permanently true on pool worker threads.
    pub(crate) static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };

    /// Per-thread cap on the participants of parallel calls issued from
    /// this thread (0 = no cap). See [`with_thread_limit`].
    static THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// Explicitly requested pool size (0 = unset). Read once, when the size
/// resolves.
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// The resolved pool size (workers + caller). Fixed for the process once a
/// parallel terminal has run.
static RESOLVED: OnceLock<usize> = OnceLock::new();

/// Configure the pool size ahead of the first parallel call (`--threads`
/// plumbing). Returns `false` when the pool size had already resolved — the
/// call then has no effect and the caller should warn. Takes precedence
/// over `BAT_THREADS`, which takes precedence over
/// `available_parallelism`.
pub fn set_global_threads(n: usize) -> bool {
    REQUESTED.store(n.max(1), Ordering::Relaxed);
    RESOLVED.get().is_none()
}

/// The number of threads parallel terminals may use (pool workers plus the
/// calling thread). Resolves — and fixes — the pool size.
pub fn current_num_threads() -> usize {
    *RESOLVED.get_or_init(|| {
        let requested = REQUESTED.load(Ordering::Relaxed);
        if requested > 0 {
            return requested;
        }
        if let Ok(v) = std::env::var("BAT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Run `f` with parallel calls *from this thread* pinned to exactly
/// `limit` participating threads (1 = serial). This is an override, not a
/// cap: it may exceed the resolved pool size, in which case the pool grows
/// extra parked workers — tests use this to sweep thread counts 1/2/4
/// inside one process, even on a single-core host. Purely thread-local:
/// other threads and the global configuration are unaffected.
pub fn with_thread_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_LIMIT.with(|c| c.replace(limit.max(1)));
    let out = f();
    THREAD_LIMIT.with(|c| c.set(prev));
    out
}

/// Number of threads a parallel terminal over `items` items should use,
/// honouring nesting (serial) and the per-thread override or pool size.
pub(crate) fn worker_count(items: usize) -> usize {
    if items < 2 || IN_PARALLEL.with(Cell::get) {
        return 1;
    }
    let threads = match THREAD_LIMIT.with(Cell::get) {
        0 => current_num_threads(),
        limit => limit,
    };
    threads.min(items)
}

/// A lifetime-erased borrowed job closure. The `'static` is a lie told to
/// the borrow checker: the reference is valid until the submitting
/// [`run_parallel`] call returns, and that call blocks until every
/// participant has finished — enforced by the `started`/`finished`
/// accounting below.
struct Job {
    func: &'static (dyn Fn() + Sync),
    /// Submission instant, for the ticket-wait histogram.
    submitted: std::time::Instant,
    /// Unclaimed participant tickets. Mutated only under the pool queue
    /// lock, so claiming and queue removal stay consistent.
    tickets: AtomicUsize,
    /// Workers that claimed a ticket (final once `tickets` reaches 0 under
    /// the queue lock — afterwards no new claims are possible).
    started: AtomicUsize,
    /// Workers that finished running the closure.
    finished: AtomicUsize,
    /// Whether any participant panicked.
    panicked: AtomicBool,
    /// Completion signalling for the submitting thread.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl Job {
    /// Run the job closure once, recording completion and panics.
    fn participate(&self) {
        let f = self.func;
        let t0 = std::time::Instant::now();
        if catch_unwind(AssertUnwindSafe(f)).is_err() {
            self.panicked.store(true, Ordering::Relaxed);
        }
        obs().busy_us.add(t0.elapsed().as_micros() as u64);
        let _guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.finished.fetch_add(1, Ordering::Release);
        self.done_cv.notify_all();
    }
}

/// Hard ceiling on pool workers, against runaway `with_thread_limit`
/// values. Far above any realistic host or sweep.
const MAX_WORKERS: usize = 256;

/// Observability handles for the pool, registered once. Out-of-band
/// telemetry only — nothing here influences scheduling.
struct PoolMetrics {
    jobs: &'static bat_obs::metrics::Counter,
    busy_us: &'static bat_obs::metrics::Counter,
    queue_depth: &'static bat_obs::metrics::Gauge,
    workers: &'static bat_obs::metrics::Gauge,
    ticket_wait_us: &'static bat_obs::metrics::Histogram,
}

fn obs() -> &'static PoolMetrics {
    use bat_obs::metrics::{counter, gauge, histogram};
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        jobs: counter(
            "bat_pool_jobs_total",
            "Parallel jobs submitted to the worker pool.",
        ),
        busy_us: counter(
            "bat_pool_busy_us_total",
            "Microseconds participants (workers + callers) spent running job closures.",
        ),
        queue_depth: gauge("bat_pool_queue_depth", "Jobs waiting in the pool queue."),
        workers: gauge("bat_pool_workers", "Pool worker threads spawned."),
        ticket_wait_us: histogram(
            "bat_pool_ticket_wait_us",
            "Microseconds between job submission and a worker claiming a ticket.",
        ),
    })
}

/// Total microseconds participants spent busy inside job closures — read
/// by the batch-eval bench to report measured worker utilization.
pub fn pool_busy_us() -> u64 {
    obs().busy_us.get()
}

/// The process-wide pool: a queue of pending jobs plus parked workers.
struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    /// Worker threads spawned so far. The pool starts at the resolved size
    /// minus the participating caller and grows on demand when a
    /// `with_thread_limit` override asks for more.
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Make sure at least `want` parked workers exist (capped).
    fn ensure_workers(&self, want: usize) -> usize {
        let want = want.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().unwrap_or_else(|e| e.into_inner());
        while *spawned < want {
            std::thread::Builder::new()
                .name(format!("bat-rayon-{spawned}"))
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
        obs().workers.set(*spawned as i64);
        want
    }
}

/// Body of every pool worker: park on the queue, claim one ticket of the
/// front job, run it, repeat. Workers live for the process — parking is a
/// condvar wait, so an idle pool costs nothing.
fn worker_loop() {
    IN_PARALLEL.with(|c| c.set(true));
    let pool = pool();
    loop {
        let job: Arc<Job> = {
            let mut queue = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Claim a ticket from the first job that still has one;
                // drop exhausted jobs from the queue as they are found.
                while let Some(front) = queue.front() {
                    if front.tickets.load(Ordering::Relaxed) == 0 {
                        queue.pop_front();
                        continue;
                    }
                    break;
                }
                if let Some(front) = queue.front() {
                    front.tickets.fetch_sub(1, Ordering::Relaxed);
                    front.started.fetch_add(1, Ordering::Relaxed);
                    let job = Arc::clone(front);
                    if job.tickets.load(Ordering::Relaxed) == 0 {
                        queue.pop_front();
                    }
                    obs().queue_depth.set(queue.len() as i64);
                    obs()
                        .ticket_wait_us
                        .observe(job.submitted.elapsed().as_micros() as u64);
                    break job;
                }
                queue = pool
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        job.participate();
    }
}

/// Run `f` on up to `participants` threads — the calling thread plus up to
/// `participants - 1` pool workers — returning when *every* participant has
/// finished. `f` is called once per participant and is expected to loop
/// claiming work from shared state it captures. Propagates panics from any
/// participant.
pub(crate) fn run_parallel(participants: usize, f: &(dyn Fn() + Sync)) {
    debug_assert!(participants >= 2, "serial calls never reach the pool");
    let pool = pool();
    let extra = pool.ensure_workers(participants.saturating_sub(1));
    if extra == 0 {
        // Degenerate override: run in place, still marked parallel.
        let was = IN_PARALLEL.with(|c| c.replace(true));
        let t0 = std::time::Instant::now();
        f();
        obs().busy_us.add(t0.elapsed().as_micros() as u64);
        IN_PARALLEL.with(|c| c.set(was));
        return;
    }
    obs().jobs.inc();

    // SAFETY: lifetime erasure only. The job can outlive this frame only
    // inside worker threads that are still *running* it, and we block on
    // exactly those below, so the borrow can never dangle.
    let func = unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(f) };
    let job = Arc::new(Job {
        func,
        submitted: std::time::Instant::now(),
        tickets: AtomicUsize::new(extra),
        started: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    });

    {
        let mut queue = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Arc::clone(&job));
        obs().queue_depth.set(queue.len() as i64);
    }
    pool.available.notify_all();

    // The caller is a participant too; its share of the claim loop runs
    // inside the parallel region, so nested calls from it serialize.
    let was = IN_PARALLEL.with(|c| c.replace(true));
    let t0 = std::time::Instant::now();
    let caller_panicked = catch_unwind(AssertUnwindSafe(f)).is_err();
    obs().busy_us.add(t0.elapsed().as_micros() as u64);
    IN_PARALLEL.with(|c| c.set(was));

    // Cancel unclaimed tickets: workers that have not started by the time
    // the caller drains the cursor would only observe no work left, and the
    // caller must not park waiting for a busy pool to get around to that.
    let started = {
        let mut queue = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
        job.tickets.store(0, Ordering::Relaxed);
        if let Some(pos) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
            queue.remove(pos);
        }
        obs().queue_depth.set(queue.len() as i64);
        // No further claims can happen once tickets hit 0 under the lock.
        job.started.load(Ordering::Relaxed)
    };

    let mut guard = job.done_lock.lock().unwrap_or_else(|e| e.into_inner());
    while job.finished.load(Ordering::Acquire) < started {
        guard = job.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
    drop(guard);

    if caller_panicked || job.panicked.load(Ordering::Relaxed) {
        panic!("rayon-compat worker panicked");
    }
}
