//! Offline stand-in for the subset of `serde_json` used by this workspace:
//! [`to_string_pretty`], [`from_str`] and [`Error`], over the value-based
//! `serde` stand-in.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` prints the shortest representation that round-trips, and
        // always includes a '.' or exponent so integral floats stay floats.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no infinities/NaN; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_value_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value_compact(item, out);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(&b) => Err(self.err(&format!("unexpected character {:?}", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this suite's
                            // documents; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 5.0, 1e-300, std::f64::consts::PI] {
            let s = to_string_pretty(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1i64, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<i64>>>(&s).unwrap(), v);
        let o: Vec<Option<f64>> = vec![Some(1.5), None];
        let s = to_string(&o).unwrap();
        assert_eq!(s, "[1.5,null]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&s).unwrap(), o);
    }

    #[test]
    fn pretty_output_shape() {
        let v = vec![1i64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<i64>("").is_err());
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
