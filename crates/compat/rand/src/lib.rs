//! Offline stand-in for the subset of the `rand` API used by this
//! workspace: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and the
//! [`seq::SliceRandom`] / [`seq::IndexedRandom`] helpers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed on every platform, which is all the suite requires (its
//! protocols never depend on matching upstream `rand`'s exact stream).

/// Uniform sampling from a range, used by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                 i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// The random-number generator interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A value uniformly distributed over `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value of a supported primitive type.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::random`] can produce.
pub trait Standard: Sized {
    /// Draw a uniformly random value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The suite's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random sequence operations over slices.

    use super::Rng;

    /// Random element selection.
    pub trait IndexedRandom<T> {
        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place random reordering.
    pub trait SliceRandom<T> {
        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Shuffle so the first `amount` elements are a uniform random
        /// sample; returns (shuffled prefix, remainder).
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]);
    }

    impl<T> SliceRandom<T> for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let n = self.len();
            let amount = amount.min(n);
            for i in 0..amount {
                let j = rng.random_range(i..n);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_partial_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..10).collect();
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: &[u32] = &[];
        assert!(empty.choose(&mut rng).is_none());
        let mut w: Vec<u32> = (0..10).collect();
        let (head, _) = w.partial_shuffle(&mut rng, 4);
        assert_eq!(head.len(), 4);
    }
}
