//! Offline stand-in for the subset of `parking_lot` used by this
//! workspace: a [`Mutex`] with an infallible `lock()` (no poisoning),
//! backed by `std::sync::Mutex`.

use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available. A panic while a previous
    /// holder held the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutably borrow the inner value (no locking required).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }
}
