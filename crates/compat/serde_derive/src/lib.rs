//! Offline stand-in for serde's derive macros, targeting the value-based
//! `Serialize` / `Deserialize` traits of the sibling `serde` stand-in.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * structs with named fields;
//! * enums whose variants are unit or newtype (one unnamed field);
//! * attributes `#[serde(rename = "...")]`, `#[serde(rename_all =
//!   "snake_case")]`, `#[serde(default)]`,
//!   `#[serde(skip_serializing_if = "path")]` and the container attribute
//!   `#[serde(deny_unknown_fields)]` (structs: deserialization errors on
//!   any object key that maps to no field).
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`
//! available offline); code is generated as source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed `#[serde(...)]` setting.
#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    rename_all: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
    deny_unknown_fields: bool,
}

impl SerdeAttrs {
    fn merge(&mut self, other: SerdeAttrs) {
        if other.rename.is_some() {
            self.rename = other.rename;
        }
        if other.rename_all.is_some() {
            self.rename_all = other.rename_all;
        }
        self.default |= other.default;
        if other.skip_serializing_if.is_some() {
            self.skip_serializing_if = other.skip_serializing_if;
        }
        self.deny_unknown_fields |= other.deny_unknown_fields;
    }
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
    attrs: SerdeAttrs,
}

enum Item {
    Struct {
        name: String,
        attrs: SerdeAttrs,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        attrs: SerdeAttrs,
        variants: Vec<Variant>,
    },
}

/// Parse the contents of one `#[serde(...)]` group.
fn parse_serde_args(group: &proc_macro::Group) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
            if p.as_char() == '=' {
                if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                    let raw = lit.to_string();
                    value = Some(raw.trim_matches('"').to_string());
                    i += 2;
                }
            }
        }
        match key.as_str() {
            "rename" => out.rename = value,
            "rename_all" => out.rename_all = value,
            "default" => out.default = true,
            "skip_serializing_if" => out.skip_serializing_if = value,
            "deny_unknown_fields" => out.deny_unknown_fields = true,
            other => panic!("serde-compat derive: unsupported serde attribute {other:?}"),
        }
        i += 1;
        // Skip a separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    out
}

/// Consume leading attributes at `tokens[*i..]`, folding `#[serde(...)]`
/// settings and skipping everything else (doc comments etc.).
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
            break;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if name.to_string() == "serde" {
                out.merge(parse_serde_args(args));
            }
        }
        *i += 2;
    }
    out
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_fields(body: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde-compat derive: expected ':' after field {name}, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or past the end)
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_variants(body: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let mut kind = VariantKind::Unit;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    kind = VariantKind::Newtype;
                    i += 1;
                }
                Delimiter::Brace => {
                    kind = VariantKind::Struct(parse_fields(g));
                    i += 1;
                }
                _ => {}
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                panic!("serde-compat derive: expected ',' after variant {name}, got {other:?}")
            }
        }
        variants.push(Variant { name, kind, attrs });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = take_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde-compat derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde-compat derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde-compat derive: generic types are unsupported ({name})");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde-compat derive: expected braced body for {name}, got {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            attrs: container_attrs,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            attrs: container_attrs,
            variants: parse_variants(body),
        },
        other => panic!("serde-compat derive: unsupported item kind {other:?}"),
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(v: &Variant, container: &SerdeAttrs) -> String {
    if let Some(rename) = &v.attrs.rename {
        return rename.clone();
    }
    match container.rename_all.as_deref() {
        Some("snake_case") => snake_case(&v.name),
        Some(other) => panic!("serde-compat derive: unsupported rename_all {other:?}"),
        None => v.name.clone(),
    }
}

fn field_key(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

/// Derive the value-based `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut src = String::new();
    match parse_item(input) {
        Item::Struct { name, fields, .. } => {
            src.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n"
            ));
            for f in &fields {
                let key = field_key(f);
                let fname = &f.name;
                let push = format!(
                    "entries.push((\"{key}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));"
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    src.push_str(&format!("        if !{pred}(&self.{fname}) {{ {push} }}\n"));
                } else {
                    src.push_str(&format!("        {push}\n"));
                }
            }
            src.push_str("        ::serde::Value::Object(entries)\n    }\n}\n");
        }
        Item::Enum {
            name,
            attrs,
            variants,
        } => {
            src.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in &variants {
                let key = variant_key(v, &attrs);
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => src.push_str(&format!(
                        "            {name}::{vname} => ::serde::Value::String(\"{key}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => src.push_str(&format!(
                        "            {name}::{vname}(inner) => ::serde::Value::Object(vec![(\"{key}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let key = field_key(f);
                                let fname = &f.name;
                                format!(
                                    "(\"{key}\".to_string(), ::serde::Serialize::to_value({fname}))"
                                )
                            })
                            .collect();
                        src.push_str(&format!(
                            "            {name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{key}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            bindings.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            src.push_str("        }\n    }\n}\n");
        }
    }
    src.parse()
        .expect("serde-compat derive generated invalid Serialize impl")
}

/// Derive the value-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut src = String::new();
    match parse_item(input) {
        Item::Struct {
            name,
            attrs,
            fields,
        } => {
            src.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n        let entries = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n"
            ));
            if attrs.deny_unknown_fields {
                let known: Vec<String> = fields
                    .iter()
                    .map(|f| format!("\"{}\"", field_key(f)))
                    .collect();
                src.push_str(&format!(
                    "        const KNOWN: &[&str] = &[{}];\n        for (k, _) in entries {{\n            if !KNOWN.contains(&k.as_str()) {{\n                return ::core::result::Result::Err(::serde::DeError::unknown_field(k, \"{name}\"));\n            }}\n        }}\n",
                    known.join(", ")
                ));
            }
            src.push_str(&format!("        ::core::result::Result::Ok({name} {{\n"));
            for f in &fields {
                let key = field_key(f);
                let fname = &f.name;
                let fallback = if f.attrs.default {
                    "::core::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::core::result::Result::Err(::serde::DeError::missing_field(\"{key}\", \"{name}\"))"
                    )
                };
                src.push_str(&format!(
                    "            {fname}: match ::serde::field(entries, \"{key}\") {{ ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, ::core::option::Option::None => {fallback} }},\n"
                ));
            }
            src.push_str("        })\n    }\n}\n");
        }
        Item::Enum {
            name,
            attrs,
            variants,
        } => {
            src.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n"
            ));
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let newtypes: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            if !units.is_empty() {
                src.push_str(
                    "        if let ::serde::Value::String(s) = v {\n            match s.as_str() {\n",
                );
                for v in &units {
                    let key = variant_key(v, &attrs);
                    let vname = &v.name;
                    src.push_str(&format!(
                        "                \"{key}\" => return ::core::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                src.push_str("                _ => {}\n            }\n        }\n");
            }
            if !newtypes.is_empty() {
                src.push_str(
                    "        if let ::core::option::Option::Some(entries) = v.as_object() {\n            if entries.len() == 1 {\n                let (tag, inner) = &entries[0];\n                match tag.as_str() {\n",
                );
                for v in &newtypes {
                    let key = variant_key(v, &attrs);
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Newtype => src.push_str(&format!(
                            "                    \"{key}\" => return ::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let field_inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let fkey = field_key(f);
                                    let fname = &f.name;
                                    format!(
                                        "{fname}: match inner.get(\"{fkey}\") {{ ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, ::core::option::Option::None => return ::core::result::Result::Err(::serde::DeError::missing_field(\"{fkey}\", \"{name}\")) }}"
                                    )
                                })
                                .collect();
                            src.push_str(&format!(
                                "                    \"{key}\" => return ::core::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                                field_inits.join(", ")
                            ));
                        }
                        VariantKind::Unit => unreachable!(),
                    }
                }
                src.push_str(
                    "                    _ => {}\n                }\n            }\n        }\n",
                );
            }
            src.push_str(&format!(
                "        ::core::result::Result::Err(::serde::DeError::expected(\"a known variant\", \"{name}\"))\n    }}\n}}\n"
            ));
        }
    }
    src.parse()
        .expect("serde-compat derive generated invalid Deserialize impl")
}
