//! Offline stand-in for the subset of `proptest` used by this workspace:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, numeric range and
//! tuple strategies, [`collection::vec`], and the [`proptest!`] /
//! [`prop_assert!`] family of macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the deterministic seed and case number, which is reproducible because
//! the generator stream is a pure function of the seed
//! (`PROPTEST_SEED`, default 0) and case count (`PROPTEST_CASES`,
//! default 64).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving strategy generation.
pub type TestRng = StdRng;

/// Number of cases each `proptest!` test runs.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Deterministic RNG for one test function.
pub fn test_rng() -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(seed)
}

/// A generator of random values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run `cases()` random cases of each enclosed test function.
///
/// Each argument is `pattern in strategy`; the body runs once per case with
/// fresh values drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::test_rng();
            for __case in 0..$crate::cases() {
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                let _ = __case;
                $body
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The imports `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_and_flat_map(v in (1usize..4).prop_flat_map(|n| collection::vec(0u8..3, n)).prop_map(|v| v.len())) {
            prop_assert!((1..4).contains(&v));
        }

        #[test]
        fn tuples_and_just(t in (0u8..3, Just(7i64)), mut s in collection::vec(0u8..3, 1..3)) {
            prop_assert_eq!(t.1, 7);
            s.push(0);
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng();
        let mut b = crate::test_rng();
        let s = 0u64..100;
        for _ in 0..10 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
