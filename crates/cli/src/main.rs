//! `bat` — the BAT-rs command-line interface.
//!
//! Regenerates every table and figure of the BAT 2.0 paper on the simulated
//! GPU testbed, and runs/compares tuners on the benchmark suite.

mod commands;
mod ctx;

use ctx::Opts;

const HELP: &str = "\
bat — BAT-rs: a benchmarking suite for kernel tuners (BAT 2.0 reproduction)

USAGE:
    bat <command> [options]

EXPERIMENT COMMANDS (one per paper table/figure):
    tables       Tables I-VII: tunable parameter spaces
    table8       Table VIII: search-space sizes (cardinality/constrained/valid/reduced)
    fig1         performance distributions centred on the median configuration
    fig2         random-search convergence curves
    fig3         proportion-of-centrality search difficulty (FFG + PageRank)
    fig4         max speedup of optimum over median
    fig5         performance-portability matrices
    fig6         permutation feature importance (+ regressor R²)

SUITE COMMANDS:
    list                 benchmarks, GPUs and tuners
    tune                 run one tuner  (--bench, --tuner, --budget, --seed, --batch, --json, --t4, --source)
    pareto               multi-objective tuning: time × energy Pareto fronts
                         (--bench, --arch, --budget, --seed, --tuner, --capacity, --batch)
    campaign             run a declarative campaign spec (--spec FILE, --out FILE, --resume,
                         --batch N, --fault-rate R, --threads N, --connect EP,
                         --cache FILE reuses a bat/cache/v1 store: exact-hit
                         trials replay verbatim (warm artifact byte-identical
                         to cold), misses tune and fold back in atomically;
                         --trace FILE writes a bat/trace/v1 JSONL span trace;
                         EP = in-process | loopback | HOST:PORT of a
                         `bat serve` daemon — artifacts are byte-identical
                         across endpoints; thread-count precedence:
                         --threads > BAT_THREADS > host cores)
    cache                inspect/merge/evict bat/cache/v1 stores:
                         inspect --input FILE [--bench B --arch A ranks
                         warm-start donor architectures], merge --inputs
                         A,B,... --out FILE (order-independent, byte-stable),
                         evict --input FILE --out FILE (drop replay blobs,
                         keep the compact shippable cells)
    serve                host tuning sessions as a daemon (--addr HOST:PORT,
                         --slots N concurrent batches, --inflight N queued
                         batches per session, --threads N, --metrics ADDR
                         serves Prometheus text exposition over HTTP,
                         --heartbeat N prints a status line every N seconds,
                         0 disables, default 10, --cache FILE loads a
                         bat/cache/v1 store and answers wire cache_lookup
                         requests from a lock-free index); clients connect
                         with `bat campaign --connect HOST:PORT`
    compare              compare all tuners at equal budget (--bench, --budget, --repeats)
    ranks                cross-benchmark tuner ranking, Friedman-style (--budget, --repeats)
    online               KTT-style dynamic autotuning time-to-solution (--bench, --invocations)
    difficulty           FDC / walk-autocorrelation / minima statistics (--bench, --samples)
    noise                measurement-noise sensitivity of selection quality (--bench, --budget)
    convergence-tuners   best-so-far curves for every tuner (--bench, --budget)
    source               print generated CUDA for a configuration (--bench, --config v1,v2,...)
    t1                   print a benchmark's T1 specification document (--bench)

COMMON OPTIONS:
    --bench a,b,...      restrict to benchmarks (default: all seven)
    --arch a,b,...       restrict to GPUs (default: RTX 2080 Ti, RTX 3060, RTX 3090, RTX Titan)
    --samples N          sample count for the non-exhaustive benchmarks (default 10000)
    --seed N             RNG seed (default 0)

EXAMPLES:
    bat table8 --samples 3000
    bat fig5 --bench pnpoly
    bat tune --bench hotspot --arch rtx3090 --tuner greedy-ils --budget 500
    bat campaign --spec specs/ci-smoke.json --out smoke.json
";

/// Print a typed [`bat_core::Error`] and exit non-zero — the service
/// subcommands report failures through the unified error hierarchy
/// instead of panicking.
fn fail_on_error(outcome: Result<(), bat_core::Error>) {
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        print!("{HELP}");
        std::process::exit(2);
    };
    let opts = Opts::new(&args[1..]);
    match cmd {
        "list" => commands::cmd_list(&opts),
        "tables" => commands::cmd_tables(&opts),
        "table8" => commands::cmd_table8(&opts),
        "fig1" => commands::cmd_fig1(&opts),
        "fig2" => commands::cmd_fig2(&opts),
        "fig3" => commands::cmd_fig3(&opts),
        "fig4" => commands::cmd_fig4(&opts),
        "fig5" => commands::cmd_fig5(&opts),
        "fig6" => commands::cmd_fig6(&opts),
        "tune" => commands::cmd_tune(&opts),
        "pareto" => commands::cmd_pareto(&opts),
        "campaign" => fail_on_error(commands::cmd_campaign(&opts)),
        "serve" => fail_on_error(commands::cmd_serve(&opts)),
        "cache" => fail_on_error(commands::cmd_cache(&opts)),
        "compare" => commands::cmd_compare(&opts),
        "ranks" => commands::cmd_ranks(&opts),
        "online" => commands::cmd_online(&opts),
        "difficulty" => commands::cmd_difficulty(&opts),
        "noise" => commands::cmd_noise(&opts),
        "t1" => commands::cmd_t1(&opts),
        "convergence-tuners" => commands::cmd_convergence_tuners(&opts),
        "source" => commands::cmd_source(&opts),
        "help" | "--help" | "-h" => print!("{HELP}"),
        other => {
            eprintln!("unknown command {other:?}\n");
            print!("{HELP}");
            std::process::exit(2);
        }
    }
}
