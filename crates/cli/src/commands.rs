//! Subcommand implementations: one function per paper table/figure plus
//! tuning utilities.

use bat_analysis::{
    default_gbdt_params, default_proportions, feature_importance, important_on_any,
    max_speedup_over_median, portability_matrix, proportion_of_centrality,
    random_search_convergence, reduce_space, FitnessFlowGraph, Landscape, PageRankParams,
    PerformanceDistribution,
};
use bat_core::{Error, Protocol, TuningProblem};
use bat_harness::{
    run_campaign, CampaignSummary, Endpoint, ExperimentSpec, RecordLevel, SeedPolicy, Selector,
};
use bat_space::Neighborhood;
use bat_tuners::default_tuners;

use crate::ctx::{
    bench_on, f, paper_landscape, pct, print_table, selected_archs, selected_benches, Opts,
    EXHAUSTIVE_BENCHES,
};

/// `bat list` — benchmarks, spaces, architectures.
pub fn cmd_list(_opts: &Opts) {
    println!("BAT-rs benchmark suite (BAT 2.0 reproduction)\n");
    println!("Benchmarks:");
    let mut rows = Vec::new();
    for name in bat_kernels::BENCHMARK_NAMES {
        let k = bat_kernels::kernel_by_name(name).unwrap();
        let s = k.build_space();
        rows.push(vec![
            name.to_string(),
            s.num_params().to_string(),
            s.cardinality().to_string(),
            s.restrictions().len().to_string(),
        ]);
    }
    print_table(
        &[
            "benchmark".into(),
            "params".into(),
            "cardinality".into(),
            "restrictions".into(),
        ],
        &rows,
    );
    println!("\nSimulated testbed GPUs:");
    let mut rows = Vec::new();
    for a in bat_gpusim::GpuArch::paper_testbed() {
        rows.push(vec![
            a.name.to_string(),
            format!("{:?}", a.family),
            a.sm_count.to_string(),
            f(a.peak_gflops() / 1000.0, 1),
            f(a.mem_bandwidth_gbs, 0),
        ]);
    }
    print_table(
        &[
            "gpu".into(),
            "family".into(),
            "SMs".into(),
            "peak TFLOP/s".into(),
            "BW GB/s".into(),
        ],
        &rows,
    );
    println!("\nTuners:");
    for t in default_tuners() {
        println!("  {}", t.name());
    }
    println!("\nMulti-objective tuners (`bat pareto`, campaign objective specs):");
    for t in bat_moo::moo_tuners() {
        println!("  {}", t.name());
    }
}

/// `bat tables` — Tables I–VII (the tunable parameter spaces).
pub fn cmd_tables(opts: &Opts) {
    for name in selected_benches(opts) {
        let k = bat_kernels::kernel_by_name(&name).unwrap();
        let s = k.build_space();
        println!("\nTable: tunable parameters — {name} kernel");
        let rows: Vec<Vec<String>> = s
            .params()
            .iter()
            .map(|p| {
                let vals = if p.values.len() > 12 {
                    let head: Vec<String> = p.values[..6].iter().map(|v| v.to_string()).collect();
                    format!("{{{}, ..., {}}}", head.join(", "), p.values.last().unwrap())
                } else {
                    let all: Vec<String> = p.values.iter().map(|v| v.to_string()).collect();
                    format!("{{{}}}", all.join(", "))
                };
                vec![p.name.clone(), vals, p.len().to_string()]
            })
            .collect();
        print_table(&["parameter".into(), "values".into(), "#".into()], &rows);
        if !s.restrictions().is_empty() {
            println!("  restrictions:");
            for r in s.restrictions() {
                println!("    {}", r.source);
            }
        }
        println!("  cardinality: {}", s.cardinality());
    }
}

/// `bat table8` — search-space sizes (cardinality, constrained, valid,
/// reduced, reduce-constrained).
pub fn cmd_table8(opts: &Opts) {
    let samples = opts.get_usize("--samples", 10_000);
    let seed = opts.get_u64("--seed", 0);
    let archs = selected_archs(opts);
    println!("Table VIII: search space sizes of benchmarks in BAT-rs\n");
    let mut rows = Vec::new();
    for name in selected_benches(opts) {
        let k = bat_kernels::kernel_by_name(&name).unwrap();
        let space = k.build_space();
        let cardinality = space.cardinality();
        let constrained = space.count_valid_factored();

        // Valid: architecture-dependent launch success, known exactly only
        // for the exhaustively-searched benchmarks.
        let valid = if EXHAUSTIVE_BENCHES.contains(&name.as_str()) {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for arch in &archs {
                let b = bench_on(&name, arch);
                let l = Landscape::exhaustive(&b);
                let v = l.valid_count() as u64;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if lo == hi {
                lo.to_string()
            } else {
                format!("{lo} - {hi}")
            }
        } else {
            "N/A".to_string()
        };

        // Reduced: keep parameters with PFI >= 0.05 on any architecture.
        let mut per_arch = Vec::new();
        let mut best_cfg: Option<Vec<i64>> = None;
        let mut best_time = f64::INFINITY;
        for arch in &archs {
            let b = bench_on(&name, arch);
            let l = paper_landscape(&b, samples, seed);
            if let Some(fi) = feature_importance(b.space(), &l, &default_gbdt_params(), 2, seed) {
                per_arch.push((fi.pfi.feature_names.clone(), fi.pfi.importances.clone()));
            }
            if let Some(best) = l.best() {
                let t = best.time_ms.unwrap();
                if t < best_time {
                    best_time = t;
                    best_cfg = Some(b.space().config_at(best.index));
                }
            }
        }
        let important = important_on_any(&per_arch, 0.05);
        let (reduced, reduce_constrained) = match best_cfg {
            Some(cfg) => {
                let r = reduce_space(&space, &important, &cfg).expect("reduce");
                (
                    r.reduced_cardinality.to_string(),
                    r.reduced_constrained.to_string(),
                )
            }
            None => ("N/A".into(), "N/A".into()),
        };

        rows.push(vec![
            name.clone(),
            cardinality.to_string(),
            constrained.to_string(),
            valid,
            reduced,
            reduce_constrained,
        ]);
    }
    print_table(
        &[
            "benchmark".into(),
            "cardinality".into(),
            "constrained".into(),
            "valid".into(),
            "reduced".into(),
            "reduce-constrained".into(),
        ],
        &rows,
    );
}

/// `bat fig1` — performance distributions centred on the median config.
pub fn cmd_fig1(opts: &Opts) {
    let samples = opts.get_usize("--samples", 10_000);
    let seed = opts.get_u64("--seed", 0);
    let bins = opts.get_usize("--bins", 20);
    for name in selected_benches(opts) {
        println!(
            "\nFig 1 ({name}): distribution of configuration performance (relative to median)"
        );
        let mut rows = Vec::new();
        for arch in selected_archs(opts) {
            let b = bench_on(&name, &arch);
            let l = paper_landscape(&b, samples, seed);
            let times = l.times();
            let Some(d) = PerformanceDistribution::from_times(&times, bins) else {
                rows.push(vec![arch.name.to_string(), "no valid configs".into()]);
                continue;
            };
            rows.push(vec![
                arch.name.to_string(),
                f(d.worst_rel, 3),
                f(d.best_rel, 3),
                f(d.central_mass * 100.0, 1),
                f(d.fast_cluster_mass * 100.0, 2),
                sparkline(&d.counts),
            ]);
        }
        print_table(
            &[
                "gpu".into(),
                "worst rel".into(),
                "best rel".into(),
                "±10% of median %".into(),
                "fast-cluster %".into(),
                "density (worst→best)".into(),
            ],
            &rows,
        );
    }
}

/// `bat fig2` — random-search convergence curves.
pub fn cmd_fig2(opts: &Opts) {
    let samples = opts.get_usize("--samples", 10_000);
    let seed = opts.get_u64("--seed", 0);
    let reps = opts.get_usize("--reps", 100);
    let max_evals = opts.get_usize("--max-evals", 1000);
    for name in selected_benches(opts) {
        println!("\nFig 2 ({name}): median best-so-far relative performance vs evaluations");
        let mut rows = Vec::new();
        for arch in selected_archs(opts) {
            let b = bench_on(&name, &arch);
            let l = paper_landscape(&b, samples, seed);
            let times: Vec<Option<f64>> = l.samples.iter().map(|s| s.time_ms).collect();
            let c = random_search_convergence(&times, max_evals, reps, seed);
            let probe = |n: usize| -> String {
                c.evals
                    .iter()
                    .position(|&e| e >= n)
                    .map(|i| f(c.median_rel_perf[i], 3))
                    .unwrap_or_else(|| "-".into())
            };
            rows.push(vec![
                arch.name.to_string(),
                probe(10),
                probe(100),
                probe(max_evals),
                c.evals_to_reach(0.9)
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| format!(">{max_evals}")),
            ]);
        }
        print_table(
            &[
                "gpu".into(),
                "rel perf @10".into(),
                "@100".into(),
                format!("@{max_evals}"),
                "evals to 90%".into(),
            ],
            &rows,
        );
    }
}

/// `bat fig3` — proportion of centrality (exhaustive benchmarks).
pub fn cmd_fig3(opts: &Opts) {
    let seed = opts.get_u64("--seed", 0);
    let benches = match opts.get("--bench") {
        Some(_) => selected_benches(opts),
        // The paper computes the metric only where exhaustion was feasible.
        None => vec!["gemm".into(), "convolution".into(), "pnpoly".into()],
    };
    let proportions = default_proportions();
    for name in benches {
        println!("\nFig 3 ({name}): proportion of centrality (p = 0.00 .. 0.50)");
        let mut rows = Vec::new();
        for arch in selected_archs(opts) {
            let b = bench_on(&name, &arch);
            let l = paper_landscape(&b, opts.get_usize("--samples", 10_000), seed);
            let g = FitnessFlowGraph::build(b.space(), &l, Neighborhood::HammingAny);
            if g.is_empty() {
                rows.push(vec![arch.name.to_string(), "empty FFG".into()]);
                continue;
            }
            let c = proportion_of_centrality(&g, &proportions, &PageRankParams::default());
            let mut row = vec![arch.name.to_string(), c.n_minima.to_string()];
            for v in &c.proportion_of_centrality {
                row.push(f(*v, 3));
            }
            rows.push(row);
        }
        let mut header = vec!["gpu".to_string(), "minima".to_string()];
        for p in &proportions {
            header.push(format!("p={p:.2}"));
        }
        print_table(&header, &rows);
    }
}

/// `bat fig4` — max speedup over the median configuration.
pub fn cmd_fig4(opts: &Opts) {
    let samples = opts.get_usize("--samples", 10_000);
    let seed = opts.get_u64("--seed", 0);
    println!("Fig 4: max speedup of optimum over median configuration\n");
    let archs = selected_archs(opts);
    let mut rows = Vec::new();
    for name in selected_benches(opts) {
        let mut row = vec![name.clone()];
        for arch in &archs {
            let b = bench_on(&name, arch);
            let l = paper_landscape(&b, samples, seed);
            row.push(
                max_speedup_over_median(&l)
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    let mut header = vec!["benchmark".to_string()];
    header.extend(archs.iter().map(|a| a.name.to_string()));
    print_table(&header, &rows);
}

/// `bat fig5` — performance portability matrices.
pub fn cmd_fig5(opts: &Opts) {
    let samples = opts.get_usize("--samples", 10_000);
    let seed = opts.get_u64("--seed", 0);
    let benches = match opts.get("--bench") {
        Some(_) => selected_benches(opts),
        None => vec!["convolution".into(), "pnpoly".into(), "nbody".into()],
    };
    let archs = selected_archs(opts);
    for name in benches {
        println!("\nFig 5 ({name}): portability of optimal configs (row = tuned on, col = run on)");
        let problems: Vec<_> = archs.iter().map(|a| bench_on(&name, a)).collect();
        let landscapes: Vec<_> = problems
            .iter()
            .map(|b| paper_landscape(b, samples, seed))
            .collect();
        let refs: Vec<&dyn TuningProblem> =
            problems.iter().map(|b| b as &dyn TuningProblem).collect();
        let m = portability_matrix(&refs, &landscapes);
        let mut rows = Vec::new();
        for (r, row_vals) in m.values.iter().enumerate() {
            let mut row = vec![m.platforms[r].clone()];
            for v in row_vals {
                row.push(pct(*v));
            }
            rows.push(row);
        }
        let mut header = vec!["tuned on \\ run on".to_string()];
        header.extend(m.platforms.iter().cloned());
        print_table(&header, &rows);
        if let (Some(w), Some(b)) = (m.worst_transfer(), m.best_transfer()) {
            println!(
                "  worst transfer: {:.1}% of optimal, best transfer: {:.1}%",
                w * 100.0,
                b * 100.0
            );
        }
    }
}

/// `bat fig6` — permutation feature importance per benchmark × GPU.
pub fn cmd_fig6(opts: &Opts) {
    let samples = opts.get_usize("--samples", 10_000);
    let seed = opts.get_u64("--seed", 0);
    for name in selected_benches(opts) {
        println!(
            "\nFig 6 ({name}): permutation feature importance (GBDT regressor on log-runtime)"
        );
        let k = bat_kernels::kernel_by_name(&name).unwrap();
        let space = k.build_space();
        let mut header = vec!["gpu".to_string(), "R²".to_string()];
        header.extend(space.names().iter().cloned());
        header.push("Σ importance".into());
        let mut rows = Vec::new();
        for arch in selected_archs(opts) {
            let b = bench_on(&name, &arch);
            let l = paper_landscape(&b, samples, seed);
            let Some(fi) = feature_importance(b.space(), &l, &default_gbdt_params(), 2, seed)
            else {
                rows.push(vec![arch.name.to_string(), "no data".into()]);
                continue;
            };
            let mut row = vec![arch.name.to_string(), f(fi.r2, 4)];
            for imp in &fi.pfi.importances {
                row.push(f(*imp, 3));
            }
            row.push(f(fi.pfi.total_importance(), 3));
            rows.push(row);
        }
        print_table(&header, &rows);
    }
}

/// Build the sequential-seed campaign the comparison-style subcommands
/// share: every suite tuner on an explicit benchmark × architecture set,
/// `repeats` repetitions with the historical per-repetition seeds
/// `0..repeats`, compact (curve-only) records. Benchmark names are
/// lowercased here because spec selectors match exactly, unlike the
/// fuzzy kernel registry.
fn comparison_spec(
    name: &str,
    benches: &[String],
    archs: &[bat_gpusim::GpuArch],
    budget: u64,
    repeats: u64,
) -> ExperimentSpec {
    ExperimentSpec {
        tuners: Selector::All,
        benchmarks: Selector::Subset(benches.iter().map(|b| b.to_ascii_lowercase()).collect()),
        architectures: Selector::Subset(archs.iter().map(|a| a.name.to_string()).collect()),
        budget,
        repetitions: u32::try_from(repeats).expect("--repeats out of range"),
        seed_policy: SeedPolicy::Sequential,
        record: RecordLevel::Curve,
        ..ExperimentSpec::new(name)
    }
}

/// Parse and validate the CLI's `--batch` knob with the same rules the
/// spec path applies: positive, and no wider than the budget.
fn batch_arg(opts: &Opts, budget: u64) -> u32 {
    let batch = opts.get_u64("--batch", 1);
    assert!(batch >= 1, "--batch must be positive");
    assert!(
        batch <= budget,
        "--batch {batch} exceeds the budget {budget}"
    );
    u32::try_from(batch).expect("--batch out of range")
}

/// `bat tune` — run one tuner on one benchmark (through the harness's
/// shared tuning entry point).
pub fn cmd_tune(opts: &Opts) {
    let bench = opts.get("--bench").unwrap_or_else(|| "gemm".into());
    let archs = selected_archs(opts);
    let arch = &archs[0];
    let budget = opts.get_u64("--budget", 500);
    let seed = opts.get_u64("--seed", 0);
    // Measurement parallelism of the ask/tell protocol (1 = the classic
    // serial protocol, byte-identical to the historical output).
    let batch = batch_arg(opts, budget);
    let tuner_name = opts
        .get("--tuner")
        .unwrap_or_else(|| "random-search".into());
    let tuner = bat_harness::tuner_by_name(&tuner_name)
        .unwrap_or_else(|| panic!("unknown tuner {tuner_name:?}; see `bat list`"));

    let b = bench_on(&bench, arch);
    let protocol = Protocol::default().with_batch(batch);
    let (run, _stats) = bat_harness::run_tuning(&b, tuner.as_ref(), protocol, budget, seed);
    println!(
        "tuned {bench} on {} with {} ({} evaluations, {} successful)",
        arch.name,
        tuner.name(),
        run.trials.len(),
        run.successes()
    );
    match run.best() {
        Some(best) => {
            println!("best runtime: {:.4} ms", best.time_ms().unwrap());
            println!("best configuration:");
            for (p, v) in b.space().names().iter().zip(&best.config) {
                println!("  {p} = {v}");
            }
            if opts.has("--source") {
                println!(
                    "\ngenerated kernel source:\n{}",
                    b.spec().source(&best.config)
                );
            }
        }
        None => println!("no valid configuration found within budget"),
    }
    if opts.has("--json") {
        println!("{}", run.to_json());
    }
    if opts.has("--t4") {
        let t4 = bat_core::t4::T4Results::from_run(&run, b.space().names());
        println!("{}", t4.to_json());
    }
}

/// `bat noise` — measurement-noise sensitivity: the noise-free quality of
/// the configuration each protocol selects, across noise levels.
pub fn cmd_noise(opts: &Opts) {
    // Convolution's dense near-optimal plateau makes it the benchmark
    // where noise actually flips selections; wide-margin benchmarks
    // (e.g. expdist) are noise-robust.
    let bench = opts.get("--bench").unwrap_or_else(|| "convolution".into());
    let archs = selected_archs(opts);
    let arch = &archs[0];
    let budget = opts.get_u64("--budget", 150);
    let repeats = opts.get_u64("--repeats", 15);
    let seed = opts.get_u64("--seed", 0);
    let b = bench_on(&bench, arch);
    let sigmas = [0.0, 0.01, 0.05, 0.10, 0.20, 0.40];

    println!(
        "Noise sensitivity on {bench} / {} (random search, budget {budget}, {repeats} repeats)\n",
        arch.name
    );
    let mut rows = Vec::new();
    for runs in [1u32, 5] {
        let pts = bat_analysis::noise_sensitivity(
            &b,
            &bat_tuners::RandomSearch,
            &sigmas,
            runs,
            budget,
            repeats,
            seed,
        );
        for pt in pts {
            rows.push(vec![
                format!("{runs}"),
                format!("{:.0}%", pt.sigma * 100.0),
                f(pt.median_selected_ms, 4),
                format!("{} - {}", f(pt.quartiles.0, 4), f(pt.quartiles.1, 4)),
            ]);
        }
    }
    print_table(
        &[
            "runs/config".into(),
            "noise".into(),
            "median selected (ms, noise-free)".into(),
            "IQR".into(),
        ],
        &rows,
    );
    println!(
        "\nSelected configurations are re-scored noise-free: rising medians \
         show the winner's curse; 5 runs/config (the paper-style protocol) \
         defends against it."
    );
}

/// `bat t1` — print a benchmark's specification as a T1 JSON document
/// (the BAT ecosystem's benchmark-definition format).
pub fn cmd_t1(opts: &Opts) {
    let bench = opts.get("--bench").unwrap_or_else(|| "gemm".into());
    let spec = bat_kernels::kernel_by_name(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench:?}; see `bat list`"));
    let doc = bat_kernels::t1::to_t1(spec.as_ref(), "CUDA");
    println!("{}", doc.to_json());
}

/// `bat difficulty` — classical landscape-difficulty metrics (FDC,
/// random-walk autocorrelation, local-minima statistics) complementing
/// the fig3 centrality metric.
pub fn cmd_difficulty(opts: &Opts) {
    // Walk metrics need dense landscapes; default to the paper's four
    // exhaustively-searched benchmarks (same scoping as fig3's centrality).
    let benches = match opts.get("--bench") {
        Some(_) => selected_benches(opts),
        None => EXHAUSTIVE_BENCHES.iter().map(|s| s.to_string()).collect(),
    };
    let archs = selected_archs(opts);
    let samples = opts.get_usize("--samples", 3_000);
    let seed = opts.get_u64("--seed", 0);

    println!(
        "Landscape difficulty metrics (Hamming-any walks, {samples} samples for large spaces)\n"
    );
    let nan_dash = |v: f64, d: usize| -> String {
        if v.is_nan() {
            "-".into()
        } else if v.is_infinite() {
            "inf".into()
        } else {
            f(v, d)
        }
    };
    let mut rows = Vec::new();
    for bench in &benches {
        for arch in &archs {
            let b = bench_on(bench, arch);
            let l = paper_landscape(&b, samples, seed);
            let r = bat_analysis::difficulty_default(b.space(), &l, seed);
            rows.push(vec![
                format!("{bench}/{}", arch.name),
                f(r.fdc, 3),
                nan_dash(r.autocorrelation[0], 3),
                nan_dash(r.correlation_length, 2),
                r.n_local_minima.to_string(),
                f(r.minima_mean_quality, 3),
            ]);
        }
    }
    print_table(
        &[
            "benchmark/GPU".into(),
            "FDC".into(),
            "rho(1)".into(),
            "corr len".into(),
            "minima".into(),
            "min quality".into(),
        ],
        &rows,
    );
    println!(
        "\nFDC > 0: fitness guides toward the optimum. rho(1): lag-1 walk \
         autocorrelation (higher = smoother). min quality: mean t_opt/t_min \
         over local minima."
    );
}

/// `bat compare` — all tuners on one benchmark at equal budget.
pub fn cmd_compare(opts: &Opts) {
    let bench = opts.get("--bench").unwrap_or_else(|| "gemm".into());
    let archs = selected_archs(opts);
    let arch = &archs[0];
    let budget = opts.get_u64("--budget", 300);
    let seeds = opts.get_u64("--repeats", 5);

    println!(
        "Tuner comparison on {bench} / {} (budget {budget} evals, {seeds} repeats)\n",
        arch.name
    );
    let b = bench_on(&bench, arch);
    // Ground truth via exhaustive or heavy random sampling.
    let l = paper_landscape(&b, opts.get_usize("--samples", 10_000), 0);
    let t_opt = l.best().map(|s| s.time_ms.unwrap()).unwrap_or(f64::NAN);

    // One declarative campaign replaces the bespoke (tuner × seed) loop;
    // sequential seeds reproduce the historical numbers exactly.
    let spec = comparison_spec(
        "compare",
        std::slice::from_ref(&bench),
        &archs[..1],
        budget,
        seeds,
    );
    let campaign = run_campaign(&spec).expect("comparison campaign").result;

    let mut rows = Vec::new();
    for tuner in bat_harness::known_tuners() {
        let mut bests: Vec<f64> = campaign
            .trials
            .iter()
            .filter(|t| t.tuner == tuner)
            .filter_map(|t| t.best_ms)
            .collect();
        if bests.is_empty() {
            rows.push(vec![tuner, "-".into(), "-".into(), "-".into()]);
            continue;
        }
        bests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = bests[bests.len() / 2];
        let best = bests[0];
        rows.push(vec![tuner, f(median, 4), f(best, 4), f(t_opt / median, 3)]);
    }
    rows.sort_by(|a, b| a[1].partial_cmp(&b[1]).unwrap());
    print_table(
        &[
            "tuner".into(),
            "median best (ms)".into(),
            "overall best (ms)".into(),
            "rel perf vs opt".into(),
        ],
        &rows,
    );
    println!("\n  sampled optimum: {t_opt:.4} ms");
}

/// `bat source` — print generated CUDA for a configuration.
pub fn cmd_source(opts: &Opts) {
    let bench = opts.get("--bench").unwrap_or_else(|| "gemm".into());
    let k = bat_kernels::kernel_by_name(&bench).unwrap();
    let space = k.build_space();
    let config: Vec<i64> = match opts.get("--config") {
        Some(s) => s
            .split(',')
            .map(|v| v.trim().parse().expect("config values must be integers"))
            .collect(),
        None => {
            // Default: first valid configuration.
            let mut cfg = None;
            let mut scratch = vec![0i64; space.num_params()];
            for idx in 0..space.cardinality() {
                space.decode_into(idx, &mut scratch);
                if space.is_valid(&scratch) {
                    cfg = Some(scratch.clone());
                    break;
                }
            }
            cfg.expect("no valid configuration")
        }
    };
    assert_eq!(config.len(), space.num_params(), "config arity mismatch");
    println!("{}", k.source(&config));
}

/// `bat convergence-tuners` — Fig 2-style curves for every tuner (an
/// extension beyond the paper's random-search-only figure).
pub fn cmd_convergence_tuners(opts: &Opts) {
    let bench = opts.get("--bench").unwrap_or_else(|| "gemm".into());
    let archs = selected_archs(opts);
    let arch = &archs[0];
    let budget = opts.get_u64("--budget", 400);
    let seeds = opts.get_u64("--repeats", 9);
    let b = bench_on(&bench, arch);
    let l = paper_landscape(&b, opts.get_usize("--samples", 10_000), 0);
    let t_opt = l.best().map(|s| s.time_ms.unwrap()).unwrap_or(f64::NAN);

    println!(
        "Convergence of all tuners on {bench} / {} (median of {seeds} runs)\n",
        arch.name
    );
    let checkpoints = [10usize, 25, 50, 100, 200, 400];
    // The campaign's compact best-so-far curves answer every checkpoint
    // probe, so no bespoke (tuner × seed) loop is needed.
    let spec = comparison_spec(
        "convergence",
        std::slice::from_ref(&bench),
        &archs[..1],
        budget,
        seeds,
    );
    let campaign = run_campaign(&spec).expect("convergence campaign").result;
    let mut rows = Vec::new();
    for tuner in bat_harness::known_tuners() {
        let mut row = vec![tuner.clone()];
        for &c in &checkpoints {
            let mut col: Vec<f64> = campaign
                .trials
                .iter()
                .filter(|t| t.tuner == tuner)
                .map(|t| t.best_at(c as u64).map(|ms| t_opt / ms).unwrap_or(0.0))
                .collect();
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            row.push(f(col[col.len() / 2], 3));
        }
        rows.push(row);
    }
    let mut header = vec!["tuner".to_string()];
    header.extend(checkpoints.iter().map(|c| format!("@{c}")));
    print_table(&header, &rows);
}

/// `bat ranks` — cross-benchmark tuner ranking (Friedman-style mean
/// ranks over all selected benchmarks and GPUs).
pub fn cmd_ranks(opts: &Opts) {
    let benches = selected_benches(opts);
    let archs = selected_archs(opts);
    let budget = opts.get_u64("--budget", 150);
    let repeats = opts.get_u64("--repeats", 5);

    println!(
        "Cross-benchmark tuner ranking (budget {budget} evals, {repeats} repeats, {} benchmark×GPU cells)\n",
        benches.len() * archs.len()
    );
    // One campaign covers every benchmark × GPU cell; the harness summary's
    // Friedman-style rank reducer matches the comparison module's
    // aggregation (per-repetition ranks, failures last, ties averaged).
    let spec = comparison_spec("ranks", &benches, &archs, budget, repeats);
    let campaign = run_campaign(&spec).expect("ranking campaign").result;
    let summary = CampaignSummary::from_result(&campaign);
    for cell in &summary.cells {
        println!(
            "— {} / {}: winner {}",
            cell.benchmark,
            cell.architecture,
            cell.winner().unwrap_or("-")
        );
    }
    println!("\nOverall mean ranks (1 = best):\n");
    let mut order: Vec<usize> = (0..summary.tuners.len()).collect();
    order.sort_by(|&a, &b| summary.overall_rank[a].total_cmp(&summary.overall_rank[b]));
    println!("{:<24} {:>10}", "tuner", "mean rank");
    for &t in &order {
        println!(
            "{:<24} {:>10.2}",
            summary.tuners[t], summary.overall_rank[t]
        );
    }
}

/// `bat pareto` — multi-objective tuning: the non-dominated time × energy
/// front of each benchmark × GPU cell, found by a multi-objective tuner.
///
/// Deterministic end to end: the tuner is seeded, measurements are
/// deterministic, and the archive resolves ties by fixed keys — two
/// invocations (at any thread count) print identical fronts.
pub fn cmd_pareto(opts: &Opts) {
    let budget = opts.get_u64("--budget", 300);
    let seed = opts.get_u64("--seed", 0);
    let capacity = opts.get_usize("--capacity", 16);
    let batch = batch_arg(opts, budget);
    let tuner_name = opts.get("--tuner").unwrap_or_else(|| "nsga2".into());
    let tuner = bat_harness::tuner_by_name(&tuner_name)
        .unwrap_or_else(|| panic!("unknown tuner {tuner_name:?}; see `bat list`"));

    for bench in selected_benches(opts) {
        for arch in selected_archs(opts) {
            let b = bench_on(&bench, &arch);
            let (run, stats) = bat_harness::run_tuning_with_energy(
                &b,
                tuner.as_ref(),
                Protocol::default().with_batch(batch),
                budget,
                seed,
            );
            let archive = bat_moo::front_of_run(&run, capacity);
            println!(
                "\nPareto front: {bench} on {} ({} with {} evaluations, {} distinct)",
                arch.name,
                tuner.name(),
                stats.evals,
                stats.distinct
            );
            if archive.is_empty() {
                println!("  no valid configuration found");
                continue;
            }
            let names = b.space().names();
            let rows: Vec<Vec<String>> = archive
                .front()
                .iter()
                .map(|p| {
                    let cfg = b.space().config_at(p.index);
                    let cfg: Vec<String> = names
                        .iter()
                        .zip(&cfg)
                        .map(|(n, v)| format!("{n}={v}"))
                        .collect();
                    vec![
                        f(p.time_ms, 4),
                        f(p.energy_mj, 2),
                        f(p.time_ms * p.energy_mj, 2),
                        cfg.join(" "),
                    ]
                })
                .collect();
            print_table(
                &[
                    "time ms".into(),
                    "energy mJ".into(),
                    "EDP mJ·ms".into(),
                    "configuration".into(),
                ],
                &rows,
            );
            let points: Vec<(f64, f64)> = archive
                .front()
                .iter()
                .map(|p| (p.time_ms, p.energy_mj))
                .collect();
            if let Some(reference) = bat_analysis::hypervolume_reference([points.as_slice()]) {
                let summary = bat_analysis::front_summary(&points, reference).unwrap();
                println!(
                    "  front size {} | hypervolume {:.4} (ref {:.4} ms, {:.2} mJ) | best time {:.4} ms | best energy {:.2} mJ",
                    summary.front_size,
                    summary.hypervolume,
                    reference.0,
                    reference.1,
                    summary.best_time_ms,
                    summary.best_energy_mj,
                );
            }
        }
    }
}

/// Parse `--threads N` and size the worker pool before any parallel work.
fn apply_threads(opts: &Opts) -> Result<(), Error> {
    if let Some(threads) = opts.get("--threads") {
        let n: usize = threads.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
            Error::spec(format!(
                "--threads expects a positive integer, got {threads:?}"
            ))
        })?;
        if !rayon::set_global_threads(n) {
            return Err(Error::spec(
                "--threads came too late: the worker pool already started",
            ));
        }
    }
    Ok(())
}

/// `bat campaign` — run a declarative campaign spec through the harness
/// (the CLI face of the `bat-harness` binary). `--connect` routes trial
/// evaluation through a tuning daemon (loopback or TCP); the artifact is
/// byte-identical to the in-process run.
pub fn cmd_campaign(opts: &Opts) -> Result<(), Error> {
    apply_threads(opts)?;
    if let Some(trace) = opts.get("--trace") {
        bat_obs::trace::install(std::path::Path::new(&trace))
            .map_err(|e| Error::io(format!("--trace {trace}: {e}")))?;
    }
    let path = opts
        .get("--spec")
        .ok_or_else(|| Error::spec("--spec FILE is required; see specs/ for examples"))?;
    let mut spec = bat_harness::load_spec_file(&path)?;
    if let Some(batch) = opts.get("--batch") {
        let batch: u32 = batch
            .parse()
            .map_err(|_| Error::spec(format!("bad --batch value {batch:?}")))?;
        spec.protocol.set_batch(batch);
    }
    if let Some(rate) = opts.get("--fault-rate") {
        let rate: f64 = rate
            .parse()
            .ok()
            .filter(|r| (0.0..=1.0).contains(r))
            .ok_or_else(|| Error::spec(format!("--fault-rate must be in [0, 1], got {rate:?}")))?;
        spec.set_fault_rate(rate);
    }
    let endpoint = match opts.get("--connect") {
        Some(ep) => Endpoint::parse(&ep).map_err(Error::from)?,
        None => Endpoint::InProcess,
    };
    let out = opts.get("--out");
    let cache = opts.get("--cache");
    let run = bat_harness::run_spec_to_file_cached(
        &spec,
        out.as_deref(),
        opts.has("--resume"),
        false,
        &endpoint,
        cache.as_deref(),
    )?;

    match &out {
        Some(p) => println!("wrote {p}"),
        // Artifact on stdout; the report goes to stderr so a redirected
        // artifact stays parseable.
        None => println!("{}", run.result.to_json()),
    }
    bat_harness::report_run(&run, false);
    bat_obs::trace::flush();
    Ok(())
}

/// `bat serve` — host tuning sessions as a long-running daemon. Clients
/// (`bat campaign --connect HOST:PORT`, `bat-harness run --connect ...`,
/// or any `bat/wire/v1` speaker) open sessions, stream evaluation batches
/// and read budget/statistics accounting; the daemon schedules batches
/// fairly across sessions and bounds each session's in-flight work.
/// Serves until a client sends a `shutdown` request.
pub fn cmd_serve(opts: &Opts) -> Result<(), Error> {
    apply_threads(opts)?;
    let addr = opts
        .get("--addr")
        .unwrap_or_else(|| "127.0.0.1:4780".into());
    let mut config = bat_server::ServerConfig::default();
    if let Some(slots) = opts.get("--slots") {
        config.max_concurrent_batches =
            slots
                .parse()
                .ok()
                .filter(|&n: &usize| n >= 1)
                .ok_or_else(|| {
                    Error::spec(format!("--slots expects a positive integer, got {slots:?}"))
                })?;
    }
    if let Some(inflight) = opts.get("--inflight") {
        config.max_inflight_per_session = inflight
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| {
                Error::spec(format!(
                    "--inflight expects a positive integer, got {inflight:?}"
                ))
            })?;
    }
    config.heartbeat_secs = match opts.get("--heartbeat") {
        Some(secs) => secs.parse().map_err(|_| {
            Error::spec(format!(
                "--heartbeat expects seconds (0 disables), got {secs:?}"
            ))
        })?,
        None => 10,
    };
    let listener = std::net::TcpListener::bind(&addr)
        .map_err(|e| Error::transport(format!("bind {addr}: {e}")))?;
    let local = listener.local_addr().map_err(Error::io)?;
    // Announce readiness on stdout (flushed) so scripts can wait for it.
    println!("bat serve: listening on {local}");
    // `--metrics ADDR` exposes the process-wide registry as Prometheus
    // text exposition over plain HTTP, scrapeable while campaigns run.
    if let Some(maddr) = opts.get("--metrics") {
        let mlistener = std::net::TcpListener::bind(&maddr)
            .map_err(|e| Error::transport(format!("bind metrics {maddr}: {e}")))?;
        let mlocal = mlistener.local_addr().map_err(Error::io)?;
        println!("bat serve: metrics on http://{mlocal}/metrics");
        let _ = bat_server::spawn_metrics_endpoint(mlistener);
    }
    // `--cache FILE` loads a shipped `bat/cache/v1` artifact into the
    // lock-free index; the daemon then answers wire-level `cache_lookup`
    // requests from it.
    let cache = match opts.get("--cache") {
        Some(path) => {
            let store = bat_cache::CacheStore::load(&path).map_err(cache_error)?;
            println!("bat serve: cache {path} loaded ({})", store.summary());
            Some(std::sync::Arc::new(bat_cache::CacheIndex::build(&store)))
        }
        None => None,
    };
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let daemon = match cache {
        Some(index) => bat_server::Daemon::with_cache(config, index),
        None => bat_server::Daemon::new(config),
    };
    daemon.serve(listener)?;
    eprintln!("bat serve: shutdown requested, exiting");
    Ok(())
}

/// Map a typed cache error onto the CLI's unified error hierarchy.
fn cache_error(e: bat_cache::CacheError) -> Error {
    match e {
        bat_cache::CacheError::Io(m) => Error::io(m),
        bat_cache::CacheError::Parse(m) => Error::spec(m),
    }
}

/// `bat cache` — inspect, merge and slim `bat/cache/v1` artifacts.
///
/// * `inspect --input FILE [--bench B --arch A]` — summary plus one row
///   per cell; with a benchmark and a target architecture it also ranks
///   the cached donor architectures by machine-feature distance (the
///   warm-start neighbour order).
/// * `merge --inputs A,B,... --out FILE` — merge shard caches. The merge
///   is commutative and associative, so any grouping of the same inputs
///   produces the same bytes.
/// * `evict --input FILE --out FILE` — drop the exact-replay trial blobs,
///   keeping only the compact cells (the form to ship).
pub fn cmd_cache(opts: &Opts) -> Result<(), Error> {
    let sub = opts
        .positional(0)
        .ok_or_else(|| Error::spec("usage: bat cache <inspect|merge|evict> [options]"))?;
    match sub.as_str() {
        "inspect" => {
            let path = opts
                .get("--input")
                .ok_or_else(|| Error::spec("cache inspect requires --input FILE"))?;
            let store = bat_cache::CacheStore::load(&path).map_err(cache_error)?;
            println!("{path}: {} ({})", store.summary(), store.schema);
            let mut rows = Vec::new();
            for cell in &store.cells {
                let (ms, config) = match cell.best() {
                    Some(best) => {
                        let cfg: Vec<String> = best
                            .config
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect();
                        (f(best.ms, 4), cfg.join(","))
                    }
                    None => ("-".into(), "-".into()),
                };
                rows.push(vec![
                    cell.benchmark.clone(),
                    cell.architecture.clone(),
                    cell.scenario.clone(),
                    cell.evals.to_string(),
                    ms,
                    config,
                ]);
            }
            print_table(
                &[
                    "benchmark".into(),
                    "architecture".into(),
                    "scenario".into(),
                    "evals".into(),
                    "best ms".into(),
                    "best config".into(),
                ],
                &rows,
            );
            if let (Some(bench), Some(arch)) = (opts.get("--bench"), opts.get("--arch")) {
                let target = bat_gpusim::GpuArch::by_name(&arch)
                    .ok_or_else(|| Error::spec(format!("unknown GPU architecture {arch:?}")))?;
                let near = bat_cache::transfer::nearest_architectures(&store, &bench, &target);
                if near.is_empty() {
                    println!("\nno cached donor architectures for {bench} on {arch}");
                } else {
                    println!("\nwarm-start donors for {bench} on {arch} (nearest first):");
                    for (name, dist) in near {
                        println!("  {name}  distance {dist:.4}");
                    }
                }
            }
            Ok(())
        }
        "merge" => {
            let inputs = opts
                .get("--inputs")
                .ok_or_else(|| Error::spec("cache merge requires --inputs A,B,..."))?;
            let out = opts
                .get("--out")
                .ok_or_else(|| Error::spec("cache merge requires --out FILE"))?;
            let mut merged = bat_cache::CacheStore::new();
            for path in inputs.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let store = bat_cache::CacheStore::load(path).map_err(cache_error)?;
                merged.merge(&store);
            }
            merged.save_atomic(&out).map_err(cache_error)?;
            println!("wrote {out} ({})", merged.summary());
            Ok(())
        }
        "evict" => {
            let input = opts
                .get("--input")
                .ok_or_else(|| Error::spec("cache evict requires --input FILE"))?;
            let out = opts
                .get("--out")
                .ok_or_else(|| Error::spec("cache evict requires --out FILE"))?;
            let mut store = bat_cache::CacheStore::load(&input).map_err(cache_error)?;
            store.evict_trials();
            store.save_atomic(&out).map_err(cache_error)?;
            println!("wrote {out} ({})", store.summary());
            Ok(())
        }
        other => Err(Error::spec(format!(
            "unknown cache subcommand {other:?}; expected inspect, merge or evict"
        ))),
    }
}

/// `bat online` — KTT-style dynamic autotuning: does tuning during the
/// application run pay for itself?
pub fn cmd_online(opts: &Opts) {
    let bench = opts.get("--bench").unwrap_or_else(|| "convolution".into());
    let archs = selected_archs(opts);
    let arch = &archs[0];
    let invocations = opts.get_usize("--invocations", 5000);
    let tuning_budget = opts.get_u64("--budget", 200);
    let seed = opts.get_u64("--seed", 0);

    let b = bench_on(&bench, arch);
    let l = paper_landscape(&b, opts.get_usize("--samples", 10_000), seed);
    let t_opt = l.best().map(|s| s.time_ms.unwrap());

    println!(
        "Dynamic autotuning on {bench} / {} ({invocations} invocations, {tuning_budget} spent tuning)\n",
        arch.name
    );
    let sim = bat_analysis::OnlineSimulation {
        invocations,
        policy: bat_analysis::OnlinePolicy::TuneThenExploit { tuning_budget },
        protocol: Protocol::default(),
    };
    let mut rows = Vec::new();
    let mut static_ms = f64::NAN;
    for tuner in default_tuners() {
        let trace = sim.run(&b, tuner.as_ref(), None, t_opt, seed);
        static_ms = trace.static_ms;
        rows.push(vec![
            tuner.name().to_string(),
            f(trace.total_ms / 1000.0, 2),
            f(trace.speedup_over_static(), 2),
            trace.overhead_vs_oracle().map_or("-".into(), |o| f(o, 3)),
            trace.break_even().map_or("never".into(), |b| b.to_string()),
        ]);
    }
    rows.sort_by(|a, b| {
        a[1].parse::<f64>()
            .unwrap()
            .total_cmp(&b[1].parse::<f64>().unwrap())
    });
    print_table(
        &[
            "tuner".into(),
            "time-to-solution s".into(),
            "speedup vs static".into(),
            "overhead vs oracle".into(),
            "break-even @".into(),
        ],
        &rows,
    );
    println!(
        "\nstatic default: {} s  oracle: {} s",
        f(static_ms / 1000.0, 2),
        t_opt.map_or("-".into(), |t| f(t * invocations as f64 / 1000.0, 2)),
    );
}

fn sparkline(counts: &[u64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = counts.iter().copied().max().unwrap_or(1).max(1) as f64;
    counts
        .iter()
        .map(|&c| {
            // Log scale so small-but-present bins stay visible.
            let v = if c == 0 {
                0.0
            } else {
                ((c as f64).ln() + 1.0) / (max.ln() + 1.0)
            };
            LEVELS[((v * 7.0).round() as usize).min(7)]
        })
        .collect()
}
