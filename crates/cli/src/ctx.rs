//! Shared helpers for the `bat` CLI.

use bat_analysis::{sampled_valid, Landscape};
use bat_gpusim::GpuArch;
use bat_kernels::{benchmark, GpuBenchmark, BENCHMARK_NAMES};

/// The benchmarks the paper searches exhaustively (§V).
pub const EXHAUSTIVE_BENCHES: [&str; 4] = ["pnpoly", "nbody", "gemm", "convolution"];

/// Parse `--key value` style options from an argument list.
pub struct Opts {
    args: Vec<String>,
}

impl Opts {
    /// Wrap an argument vector.
    pub fn new(args: &[String]) -> Opts {
        Opts {
            args: args.to_vec(),
        }
    }

    /// String option, e.g. `--bench gemm`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .cloned()
    }

    /// Integer option with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// u64 option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Flag presence, e.g. `--csv`.
    pub fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    /// Positional argument at `idx`, counted before the first `--option` —
    /// the `inspect` in `bat cache inspect --input FILE`.
    pub fn positional(&self, idx: usize) -> Option<String> {
        self.args
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .nth(idx)
            .cloned()
    }
}

/// Benchmarks selected by `--bench` (comma-separated) or all seven.
pub fn selected_benches(opts: &Opts) -> Vec<String> {
    match opts.get("--bench") {
        Some(list) => list
            .split(',')
            .map(|s| {
                let s = s.trim().to_ascii_lowercase();
                assert!(
                    BENCHMARK_NAMES.contains(&s.as_str()),
                    "unknown benchmark {s:?}; available: {BENCHMARK_NAMES:?}"
                );
                s
            })
            .collect(),
        None => BENCHMARK_NAMES.iter().map(|s| s.to_string()).collect(),
    }
}

/// Architectures selected by `--arch` (comma-separated) or the testbed.
pub fn selected_archs(opts: &Opts) -> Vec<GpuArch> {
    match opts.get("--arch") {
        Some(list) => list
            .split(',')
            .map(|s| {
                GpuArch::by_name(s.trim()).unwrap_or_else(|| {
                    panic!(
                        "unknown GPU {s:?}; available: RTX 2080 Ti, RTX 3060, RTX 3090, RTX Titan"
                    )
                })
            })
            .collect(),
        None => GpuArch::paper_testbed(),
    }
}

/// Bind a benchmark to an architecture (panics on unknown name).
pub fn bench_on(name: &str, arch: &GpuArch) -> GpuBenchmark {
    benchmark(name, arch.clone()).unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
}

/// Collect the paper-protocol landscape: exhaustive for the four small
/// benchmarks, `samples` distinct valid configurations otherwise.
pub fn paper_landscape(bench: &GpuBenchmark, samples: usize, seed: u64) -> Landscape {
    if EXHAUSTIVE_BENCHES.contains(&bat_core::TuningProblem::name(bench)) {
        Landscape::exhaustive(bench)
    } else {
        sampled_valid(bench, samples, seed, samples.saturating_mul(10_000))
            .expect("valid-space sampling failed; space too constrained")
    }
}

/// Print an aligned text table: `header` then `rows` (the harness's
/// renderer, so both binaries format tables identically).
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print!("{}", bat_harness::render_table(&refs, rows));
}

/// Format a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Format an optional percentage.
pub fn pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "fail".to_string(),
    }
}
