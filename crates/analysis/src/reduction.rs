//! Table VIII: search-space reduction from feature importance.
//!
//! Parameters whose permutation importance reaches 0.05 on *any*
//! architecture are kept; the rest are pinned to the values of the best
//! known configuration. The paper reports the resulting "Reduced" and
//! "Reduce-Constrained" cardinalities as a guide to where the interesting
//! part of each space lives.

use bat_space::{ConfigSpace, SpaceError};

/// Result of reducing one benchmark's space.
#[derive(Debug, Clone)]
pub struct ReducedSpace {
    /// Names of the parameters kept free.
    pub kept: Vec<String>,
    /// Cardinality of the reduced space (free params only, no
    /// restrictions) — Table VIII "Reduced".
    pub reduced_cardinality: u64,
    /// Valid configurations of the reduced space under the original
    /// restriction set — Table VIII "Reduce-Constrained".
    pub reduced_constrained: u64,
}

/// Reduce `space` to the parameters named in `important` (importance ≥
/// threshold on any architecture), pinning the others to `pin_config`
/// (the best known configuration, aligned with the space's slots).
pub fn reduce_space(
    space: &ConfigSpace,
    important: &[String],
    pin_config: &[i64],
) -> Result<ReducedSpace, SpaceError> {
    assert_eq!(pin_config.len(), space.num_params());
    let mut pins: Vec<(&str, i64)> = Vec::new();
    let mut kept = Vec::new();
    for (i, p) in space.params().iter().enumerate() {
        if important.iter().any(|n| n == &p.name) {
            kept.push(p.name.clone());
        } else {
            pins.push((p.name.as_str(), pin_config[i]));
        }
    }
    let pinned = space.pinned(&pins)?;
    Ok(ReducedSpace {
        kept,
        reduced_cardinality: pinned.cardinality(),
        reduced_constrained: pinned.count_valid_factored(),
    })
}

/// Merge per-architecture importance scores: a parameter is important when
/// it reaches `threshold` on any architecture (the paper's rule).
pub fn important_on_any(per_arch: &[(Vec<String>, Vec<f64>)], threshold: f64) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for (names, scores) in per_arch {
        for (n, &s) in names.iter().zip(scores) {
            if s >= threshold && !out.contains(n) {
                out.push(n.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_space::{ConfigSpace, Param};

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8]))
            .param(Param::new("b", vec![1, 2, 3]))
            .param(Param::boolean("c"))
            .restrict("a * b <= 8")
            .build()
            .unwrap()
    }

    #[test]
    fn reduction_pins_unimportant_params() {
        let s = space();
        let r = reduce_space(&s, &["a".to_string()], &[4, 2, 1]).unwrap();
        assert_eq!(r.kept, vec!["a".to_string()]);
        // b pinned to 2, c pinned to 1: a free (4 values).
        assert_eq!(r.reduced_cardinality, 4);
        // restriction a*2 <= 8 -> a in {1,2,4}: 3 valid.
        assert_eq!(r.reduced_constrained, 3);
    }

    #[test]
    fn keeping_everything_changes_nothing() {
        let s = space();
        let all: Vec<String> = s.names().to_vec();
        let r = reduce_space(&s, &all, &[1, 1, 0]).unwrap();
        assert_eq!(r.reduced_cardinality, s.cardinality());
        assert_eq!(r.reduced_constrained, s.count_valid());
    }

    #[test]
    fn any_architecture_rule() {
        let per_arch = vec![
            (vec!["a".to_string(), "b".to_string()], vec![0.8, 0.01]),
            (vec!["a".to_string(), "b".to_string()], vec![0.7, 0.06]),
        ];
        let names = important_on_any(&per_arch, 0.05);
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
        let strict = important_on_any(&per_arch, 0.5);
        assert_eq!(strict, vec!["a".to_string()]);
    }
}
