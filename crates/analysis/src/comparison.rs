//! Head-to-head comparison of optimization algorithms — the study the
//! benchmark suite exists to enable (paper §I: "facilitates comparisons
//! between optimization algorithms from different autotuners", in the
//! style of Schoonhoven et al., the paper's reference \[3\]).
//!
//! Every tuner gets the same problems, the same measurement protocol and
//! the same evaluation budget; runs are repeated over seeds and summarized
//! three ways:
//!
//! * **median best-so-far curves** at log-spaced checkpoints (the
//!   per-algorithm version of the paper's Fig. 2),
//! * **final relative performance** `t_opt / t_best` per seed, and
//! * **mean ranks** across seeds (and, via [`aggregate_ranks`], across
//!   problems — the Friedman-test aggregation used in optimizer
//!   benchmarking).

use bat_core::{friedman_mean_ranks, Evaluator, Protocol, TuningProblem};
use bat_tuners::Tuner;
use rayon::prelude::*;

/// Settings shared by every tuner in one comparison.
#[derive(Debug, Clone)]
pub struct ComparisonSettings {
    /// Evaluation budget per run.
    pub budget: u64,
    /// Independent repetitions (seeds 0..repeats).
    pub repeats: u64,
    /// Evaluation counts at which the best-so-far is snapshotted.
    /// Empty = log-spaced defaults derived from `budget`.
    pub checkpoints: Vec<usize>,
    /// Measurement protocol (runs per config, noise).
    pub protocol: Protocol,
}

impl Default for ComparisonSettings {
    fn default() -> Self {
        ComparisonSettings {
            budget: 200,
            repeats: 7,
            checkpoints: Vec::new(),
            protocol: Protocol::default(),
        }
    }
}

impl ComparisonSettings {
    fn effective_checkpoints(&self) -> Vec<usize> {
        if !self.checkpoints.is_empty() {
            return self.checkpoints.clone();
        }
        // 1, 2, 5, 10, 20, 50, … up to the budget, always ending at it.
        let mut cps = Vec::new();
        let mut decade = 1usize;
        'outer: loop {
            for m in [1, 2, 5] {
                let c = m * decade;
                if c as u64 >= self.budget {
                    break 'outer;
                }
                cps.push(c);
            }
            decade *= 10;
        }
        cps.push(self.budget as usize);
        cps
    }
}

/// One tuner's aggregate over all repetitions.
#[derive(Debug, Clone)]
pub struct TunerResult {
    /// Tuner name.
    pub tuner: String,
    /// Final best time per seed (`None` when every trial failed).
    pub final_times: Vec<Option<f64>>,
    /// Median best-so-far time at each checkpoint (None until the first
    /// success at that depth).
    pub median_curve: Vec<Option<f64>>,
    /// Mean rank across seeds (1 = best). Ties share the average rank.
    pub mean_rank: f64,
}

impl TunerResult {
    /// Median of the per-seed final best times.
    pub fn median_final(&self) -> Option<f64> {
        let mut v: Vec<f64> = self.final_times.iter().flatten().copied().collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        Some(v[v.len() / 2])
    }
}

/// Full comparison on one problem.
#[derive(Debug, Clone)]
pub struct TunerComparison {
    /// Problem name.
    pub problem: String,
    /// Platform (GPU) name.
    pub platform: String,
    /// Reference optimum used for relative performance (if known).
    pub optimum_ms: Option<f64>,
    /// Checkpoints of the median curves.
    pub checkpoints: Vec<usize>,
    /// Per-tuner aggregates, sorted by mean rank (best first).
    pub results: Vec<TunerResult>,
}

impl TunerComparison {
    /// Relative performance `t_opt / median_final` of a tuner
    /// (needs `optimum_ms`).
    pub fn relative_performance(&self, tuner: &str) -> Option<f64> {
        let opt = self.optimum_ms?;
        let r = self.results.iter().find(|r| r.tuner == tuner)?;
        Some(opt / r.median_final()?)
    }

    /// The winning tuner (lowest mean rank).
    pub fn winner(&self) -> Option<&TunerResult> {
        self.results.first()
    }

    /// Render an aligned text table (tuner, mean rank, median final,
    /// relative performance when an optimum is known).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>8}\n",
            "tuner", "mean rank", "median ms", "rel perf"
        ));
        for r in &self.results {
            let med = r
                .median_final()
                .map_or("-".to_string(), |m| format!("{m:.4}"));
            let rel = self
                .optimum_ms
                .and_then(|o| r.median_final().map(|m| o / m))
                .map_or("-".to_string(), |x| format!("{x:.3}"));
            out.push_str(&format!(
                "{:<24} {:>9.2} {:>12} {:>8}\n",
                r.tuner, r.mean_rank, med, rel
            ));
        }
        out
    }
}

/// Run every tuner `repeats` times on `problem` under identical budgets and
/// protocols. `(tuner, seed)` runs execute in parallel; results are
/// deterministic because each run's RNG is seeded by its seed index alone.
///
/// `optimum_ms` is the reference optimum for relative-performance numbers;
/// pass `None` when no ground truth is available (relative columns are then
/// omitted).
pub fn compare_tuners(
    problem: &dyn TuningProblem,
    tuners: &[Box<dyn Tuner>],
    settings: &ComparisonSettings,
    optimum_ms: Option<f64>,
) -> TunerComparison {
    assert!(settings.repeats > 0, "need at least one repetition");
    assert!(settings.budget > 0, "need a positive budget");
    let checkpoints = settings.effective_checkpoints();

    // All (tuner, seed) cells in parallel; each gets a fresh evaluator so
    // budgets and caches are per-run, exactly like separate tuning sessions.
    let cells: Vec<(usize, u64, Vec<Option<f64>>)> = (0..tuners.len())
        .flat_map(|t| (0..settings.repeats).map(move |s| (t, s)))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(t, seed)| {
            let eval =
                Evaluator::with_protocol(problem, settings.protocol).with_budget(settings.budget);
            let run = tuners[t].tune(&eval, seed);
            let bsf = run.best_so_far();
            let snap: Vec<Option<f64>> = checkpoints
                .iter()
                .map(|&c| {
                    bsf.get(c.min(bsf.len()).saturating_sub(1))
                        .copied()
                        .flatten()
                })
                .collect();
            (t, seed, snap)
        })
        .collect();

    // Final best per (tuner, seed).
    let n = tuners.len();
    let reps = settings.repeats as usize;
    let mut finals: Vec<Vec<Option<f64>>> = vec![vec![None; reps]; n];
    let mut curves: Vec<Vec<Vec<Option<f64>>>> = vec![Vec::new(); n];
    for (t, seed, snap) in cells {
        finals[t][seed as usize] = snap.last().copied().flatten();
        curves[t].push(snap);
    }

    // Mean rank per tuner: rank tuners within each seed by final time,
    // failures rank last, ties share the average rank — the shared
    // Friedman reducer, so rankings agree with the harness summary path.
    let mean_ranks = friedman_mean_ranks(&finals);

    let mut results: Vec<TunerResult> = (0..n)
        .map(|t| {
            let median_curve: Vec<Option<f64>> = (0..checkpoints.len())
                .map(|c| {
                    let mut col: Vec<f64> = curves[t].iter().filter_map(|snap| snap[c]).collect();
                    if col.is_empty() {
                        return None;
                    }
                    col.sort_by(|a, b| a.total_cmp(b));
                    Some(col[col.len() / 2])
                })
                .collect();
            TunerResult {
                tuner: tuners[t].name().to_string(),
                final_times: finals[t].clone(),
                median_curve,
                mean_rank: mean_ranks[t],
            }
        })
        .collect();
    results.sort_by(|a, b| a.mean_rank.total_cmp(&b.mean_rank));

    TunerComparison {
        problem: problem.name().to_string(),
        platform: problem.platform().to_string(),
        optimum_ms,
        checkpoints,
        results,
    }
}

/// Cross-problem rank aggregation (Friedman-style): the mean of each
/// tuner's per-problem mean ranks. Requires every comparison to contain
/// the same tuner set.
#[derive(Debug, Clone)]
pub struct CrossProblemRanks {
    /// Tuner names sorted by overall mean rank (best first).
    pub tuners: Vec<String>,
    /// Overall mean rank per tuner (parallel to `tuners`).
    pub mean_ranks: Vec<f64>,
    /// Per-problem mean ranks, `(problem, ranks parallel to tuners)`.
    pub per_problem: Vec<(String, Vec<f64>)>,
}

impl CrossProblemRanks {
    /// Render an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<24} {:>10}\n", "tuner", "mean rank"));
        for (t, r) in self.tuners.iter().zip(&self.mean_ranks) {
            out.push_str(&format!("{t:<24} {r:>10.2}\n"));
        }
        out
    }
}

/// Aggregate per-problem comparisons into overall tuner ranks.
///
/// # Panics
/// If `comparisons` is empty or the tuner sets differ between problems.
pub fn aggregate_ranks(comparisons: &[TunerComparison]) -> CrossProblemRanks {
    assert!(!comparisons.is_empty(), "nothing to aggregate");
    let mut names: Vec<String> = comparisons[0]
        .results
        .iter()
        .map(|r| r.tuner.clone())
        .collect();
    names.sort();
    let mut sums = vec![0.0f64; names.len()];
    let mut per_problem = Vec::with_capacity(comparisons.len());
    for c in comparisons {
        let mut these: Vec<String> = c.results.iter().map(|r| r.tuner.clone()).collect();
        these.sort();
        assert_eq!(these, names, "tuner sets differ between comparisons");
        let ranks: Vec<f64> = names
            .iter()
            .map(|n| {
                c.results
                    .iter()
                    .find(|r| &r.tuner == n)
                    .expect("checked above")
                    .mean_rank
            })
            .collect();
        for (s, r) in sums.iter_mut().zip(&ranks) {
            *s += r;
        }
        per_problem.push((format!("{}/{}", c.problem, c.platform), ranks));
    }
    let mut idx: Vec<usize> = (0..names.len()).collect();
    let means: Vec<f64> = sums.iter().map(|s| s / comparisons.len() as f64).collect();
    idx.sort_by(|&a, &b| means[a].total_cmp(&means[b]));

    CrossProblemRanks {
        tuners: idx.iter().map(|&i| names[i].clone()).collect(),
        mean_ranks: idx.iter().map(|&i| means[i]).collect(),
        per_problem: per_problem
            .into_iter()
            .map(|(p, ranks)| (p, idx.iter().map(|&i| ranks[i]).collect()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};
    use bat_tuners::{LocalSearch, RandomSearch, SimulatedAnnealing};

    fn problem(
        name: &str,
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 15))
            .param(Param::int_range("y", 0, 15))
            .build()
            .unwrap();
        SyntheticProblem::new(name, "sim", space, |v| {
            Ok(1.0 + ((v[0] - 11) * (v[0] - 11) + (v[1] - 4) * (v[1] - 4)) as f64)
        })
    }

    fn tuners() -> Vec<Box<dyn Tuner>> {
        vec![
            Box::new(RandomSearch),
            Box::new(LocalSearch::default()),
            Box::new(SimulatedAnnealing::default()),
        ]
    }

    fn settings() -> ComparisonSettings {
        ComparisonSettings {
            budget: 60,
            repeats: 5,
            protocol: Protocol::noiseless(),
            ..ComparisonSettings::default()
        }
    }

    #[test]
    fn comparison_covers_all_tuners_and_seeds() {
        let p = problem("toy");
        let c = compare_tuners(&p, &tuners(), &settings(), Some(1.0));
        assert_eq!(c.results.len(), 3);
        for r in &c.results {
            assert_eq!(r.final_times.len(), 5);
            assert!(r.final_times.iter().all(|t| t.is_some()));
            assert_eq!(r.median_curve.len(), c.checkpoints.len());
        }
    }

    #[test]
    fn mean_ranks_are_valid_and_sorted() {
        let p = problem("toy");
        let c = compare_tuners(&p, &tuners(), &settings(), None);
        let n = c.results.len() as f64;
        // Ranks live in [1, n] and sum (over tuners) to n(n+1)/2 per seed.
        let total: f64 = c.results.iter().map(|r| r.mean_rank).sum();
        assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9, "total {total}");
        for w in c.results.windows(2) {
            assert!(w[0].mean_rank <= w[1].mean_rank);
        }
        for r in &c.results {
            assert!(r.mean_rank >= 1.0 && r.mean_rank <= n);
        }
    }

    #[test]
    fn curves_are_monotonically_improving() {
        let p = problem("toy");
        let c = compare_tuners(&p, &tuners(), &settings(), None);
        for r in &c.results {
            let vals: Vec<f64> = r.median_curve.iter().flatten().copied().collect();
            for w in vals.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{}: curve not improving", r.tuner);
            }
        }
    }

    #[test]
    fn relative_performance_uses_optimum() {
        let p = problem("toy");
        let c = compare_tuners(&p, &tuners(), &settings(), Some(1.0));
        for r in &c.results {
            let rel = c.relative_performance(&r.tuner).unwrap();
            assert!(rel > 0.0 && rel <= 1.0 + 1e-9, "{}: rel {rel}", r.tuner);
        }
        assert!(c.relative_performance("no-such-tuner").is_none());
    }

    #[test]
    fn deterministic_across_calls() {
        let p = problem("toy");
        let a = compare_tuners(&p, &tuners(), &settings(), None);
        let b = compare_tuners(&p, &tuners(), &settings(), None);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.tuner, y.tuner);
            assert_eq!(x.final_times, y.final_times);
            assert_eq!(x.mean_rank, y.mean_rank);
        }
    }

    #[test]
    fn checkpoints_default_log_spacing_ends_at_budget() {
        let s = ComparisonSettings {
            budget: 300,
            ..ComparisonSettings::default()
        };
        let cps = s.effective_checkpoints();
        assert_eq!(*cps.last().unwrap(), 300);
        assert!(cps.windows(2).all(|w| w[0] < w[1]));
        assert!(cps.contains(&1) && cps.contains(&10) && cps.contains(&100));
    }

    #[test]
    fn aggregate_ranks_across_problems() {
        let p1 = problem("p1");
        let p2 = problem("p2");
        let t = tuners();
        let c1 = compare_tuners(&p1, &t, &settings(), None);
        let c2 = compare_tuners(&p2, &t, &settings(), None);
        let agg = aggregate_ranks(&[c1.clone(), c2.clone()]);
        assert_eq!(agg.tuners.len(), 3);
        assert_eq!(agg.per_problem.len(), 2);
        // Overall mean rank is the average of the per-problem mean ranks.
        for (i, name) in agg.tuners.iter().enumerate() {
            let r1 = c1
                .results
                .iter()
                .find(|r| &r.tuner == name)
                .unwrap()
                .mean_rank;
            let r2 = c2
                .results
                .iter()
                .find(|r| &r.tuner == name)
                .unwrap()
                .mean_rank;
            assert!((agg.mean_ranks[i] - (r1 + r2) / 2.0).abs() < 1e-12);
        }
        // Sorted best-first.
        for w in agg.mean_ranks.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn table_rendering_contains_all_tuners() {
        let p = problem("toy");
        let c = compare_tuners(&p, &tuners(), &settings(), Some(1.0));
        let table = c.render_table();
        for r in &c.results {
            assert!(table.contains(&r.tuner));
        }
        let agg = aggregate_ranks(&[c]);
        let t2 = agg.render_table();
        for t in &agg.tuners {
            assert!(t2.contains(t));
        }
    }

    #[test]
    fn informed_search_outranks_random_on_smooth_problem() {
        let p = problem("toy");
        let c = compare_tuners(
            &p,
            &tuners(),
            &ComparisonSettings {
                budget: 80,
                repeats: 9,
                protocol: Protocol::noiseless(),
                ..ComparisonSettings::default()
            },
            None,
        );
        let rank = |name: &str| {
            c.results
                .iter()
                .find(|r| r.tuner == name)
                .unwrap()
                .mean_rank
        };
        // Local search exploits the bowl structure; random search cannot.
        assert!(
            rank("mls-first-improvement") < rank("random-search"),
            "local {} vs random {}",
            rank("mls-first-improvement"),
            rank("random-search")
        );
    }
}
