//! Measurement-noise sensitivity: how run-to-run variance corrupts tuner
//! decisions.
//!
//! The suite's measurement protocol (`Protocol { runs, sigma, .. }`)
//! models the noise every real tuning run fights: the paper's own protocol
//! takes several runs per configuration and aggregates robustly. This
//! study quantifies the other side — *selection error*. A tuner picks the
//! configuration with the best **measured** time; under noise that winner
//! is optimistically biased (the winner's curse), so the honest quality of
//! a run is the **noise-free** runtime of the configuration it selected.

use bat_core::{Evaluator, Protocol, TuningProblem};
use bat_tuners::Tuner;
use rayon::prelude::*;

/// Selection quality at one noise level.
#[derive(Debug, Clone)]
pub struct NoisePoint {
    /// Relative run-to-run noise (σ of the multiplicative factor).
    pub sigma: f64,
    /// Median (over repeats) of the noise-free runtime of the selected
    /// configuration.
    pub median_selected_ms: f64,
    /// Lower/upper quartiles of the same.
    pub quartiles: (f64, f64),
    /// Repeats in which every trial failed (no selection at all).
    pub failures: usize,
}

/// Run `tuner` at each noise level and score the configuration it selects
/// by its *noise-free* runtime.
///
/// `runs_per_config` is the protocol's repetition count (the paper-style
/// defence against noise); budget counts evaluations, not individual runs.
pub fn noise_sensitivity(
    problem: &dyn TuningProblem,
    tuner: &dyn Tuner,
    sigmas: &[f64],
    runs_per_config: u32,
    budget: u64,
    repeats: u64,
    base_seed: u64,
) -> Vec<NoisePoint> {
    assert!(repeats > 0, "need at least one repeat");
    sigmas
        .iter()
        .map(|&sigma| {
            let selected: Vec<Option<f64>> = (0..repeats)
                .into_par_iter()
                .map(|rep| {
                    let protocol = Protocol {
                        runs: runs_per_config,
                        sigma,
                        seed: base_seed ^ (rep << 17),
                        ..Protocol::default()
                    };
                    let eval = Evaluator::with_protocol(problem, protocol).with_budget(budget);
                    let run = tuner.tune(&eval, base_seed.wrapping_add(rep));
                    run.best().map(|b| {
                        problem
                            .evaluate_pure(&b.config)
                            .expect("best() only returns configs that measured successfully")
                    })
                })
                .collect();
            let mut ok: Vec<f64> = selected.iter().flatten().copied().collect();
            let failures = selected.len() - ok.len();
            ok.sort_by(|a, b| a.total_cmp(b));
            let (median_selected_ms, quartiles) = if ok.is_empty() {
                (f64::NAN, (f64::NAN, f64::NAN))
            } else {
                (ok[ok.len() / 2], (ok[ok.len() / 4], ok[(3 * ok.len()) / 4]))
            };
            NoisePoint {
                sigma,
                median_selected_ms,
                quartiles,
                failures,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};
    use bat_tuners::RandomSearch;

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        // Narrow margins: 1% separation between the best configs, so noise
        // above ~1% corrupts selection.
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 99))
            .build()
            .unwrap();
        SyntheticProblem::new("margins", "sim", space, |v| {
            Ok(10.0 * (1.0 + v[0] as f64 * 0.01))
        })
    }

    #[test]
    fn noiseless_selection_is_exact() {
        let p = problem();
        let pts = noise_sensitivity(&p, &RandomSearch, &[0.0], 1, 200, 9, 0);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].failures, 0);
        // Budget 200 on 100 configs: random search sees everything.
        assert!((pts[0].median_selected_ms - 10.0).abs() < 1e-9);
        assert_eq!(pts[0].quartiles.0, pts[0].median_selected_ms);
    }

    #[test]
    fn heavy_noise_degrades_selection() {
        let p = problem();
        let pts = noise_sensitivity(&p, &RandomSearch, &[0.0, 0.30], 1, 200, 15, 3);
        let clean = pts[0].median_selected_ms;
        let noisy = pts[1].median_selected_ms;
        assert!(
            noisy > clean,
            "30% noise should corrupt selection: clean {clean} noisy {noisy}"
        );
    }

    #[test]
    fn repeated_runs_defend_against_noise() {
        let p = problem();
        let sigma = 0.20;
        let one = noise_sensitivity(&p, &RandomSearch, &[sigma], 1, 150, 15, 7);
        let five = noise_sensitivity(&p, &RandomSearch, &[sigma], 9, 150, 15, 7);
        assert!(
            five[0].median_selected_ms <= one[0].median_selected_ms,
            "9-run medians should select no worse than single runs: {} vs {}",
            five[0].median_selected_ms,
            one[0].median_selected_ms
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = problem();
        let a = noise_sensitivity(&p, &RandomSearch, &[0.05], 3, 60, 5, 11);
        let b = noise_sensitivity(&p, &RandomSearch, &[0.05], 3, 60, 5, 11);
        assert_eq!(a[0].median_selected_ms, b[0].median_selected_ms);
        assert_eq!(a[0].quartiles, b[0].quartiles);
    }

    #[test]
    fn quartiles_bracket_median() {
        let p = problem();
        let pts = noise_sensitivity(&p, &RandomSearch, &[0.1], 1, 40, 11, 5);
        let pt = &pts[0];
        assert!(pt.quartiles.0 <= pt.median_selected_ms);
        assert!(pt.median_selected_ms <= pt.quartiles.1);
    }
}
