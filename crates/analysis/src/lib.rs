//! # bat-analysis
//!
//! The five benchmark-suite analyses of the BAT 2.0 paper, plus the data
//! plumbing they share:
//!
//! * [`Landscape`] — exhaustive / 10 000-sample evaluation protocol (§V),
//! * [`PerformanceDistribution`] — Fig. 1 distributions centred on the
//!   median configuration,
//! * [`random_search_convergence`] — Fig. 2 convergence curves,
//! * [`FitnessFlowGraph`] + [`pagerank`] + [`proportion_of_centrality`] —
//!   Fig. 3 search-difficulty metric,
//! * [`max_speedup_over_median`] — Fig. 4,
//! * [`portability_matrix`] — Fig. 5,
//! * [`feature_importance`] + [`reduce_space`] — Fig. 6 and Table VIII,
//! * [`compare_tuners`] + [`aggregate_ranks`] — head-to-head optimizer
//!   comparisons (the suite's §I purpose, in the style of reference \[3\]),
//! * [`OnlineSimulation`] — KTT-style dynamic autotuning (time-to-solution
//!   including the tuning overhead),
//! * [`front_summary`] + [`hypervolume_reference`] — Pareto-front quality
//!   reducers for the multi-objective (time × energy) campaigns.

#![warn(missing_docs)]

mod centrality;
mod comparison;
mod convergence;
mod difficulty;
mod distribution;
mod ffg;
mod landscape;
mod landscape_valid;
mod noise;
mod online;
mod pagerank;
mod pareto;
mod pfi;
mod portability;
mod reduction;
mod speedup;

pub use centrality::{default_proportions, proportion_of_centrality, CentralityCurve};
pub use comparison::{
    aggregate_ranks, compare_tuners, ComparisonSettings, CrossProblemRanks, TunerComparison,
    TunerResult,
};
pub use convergence::{evals_to_target, random_search_convergence, ConvergenceCurve};
pub use difficulty::{difficulty, difficulty_default, DifficultyReport};
pub use distribution::PerformanceDistribution;
pub use ffg::FitnessFlowGraph;
pub use landscape::{Landscape, Sample};
pub use landscape_valid::sampled_valid;
pub use noise::{noise_sensitivity, NoisePoint};
pub use online::{OnlinePolicy, OnlineSimulation, OnlineTrace};
pub use pagerank::{pagerank, PageRankParams};
pub use pareto::{front_summary, hypervolume_reference, merged_front, FrontSummary};
pub use pfi::{default_gbdt_params, feature_importance, landscape_dataset, FeatureImportance};
pub use portability::{portability_matrix, PortabilityMatrix};
pub use reduction::{important_on_any, reduce_space, ReducedSpace};
pub use speedup::max_speedup_over_median;
