//! PageRank over fitness flow graphs.
//!
//! The proportion-of-centrality metric weighs local minima by their
//! PageRank in the FFG: the stationary mass of a damped random walk along
//! improving edges, which approximates how often a randomized
//! first-improvement local search arrives at each minimum.

use rayon::prelude::*;

use crate::ffg::FitnessFlowGraph;

/// PageRank settings.
#[derive(Debug, Clone, Copy)]
pub struct PageRankParams {
    /// Damping factor (probability of following an edge vs. teleporting).
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams {
            damping: 0.85,
            tolerance: 1e-10,
            max_iters: 200,
        }
    }
}

/// Compute PageRank of every node. The returned vector sums to 1.
///
/// Dangling nodes (local minima) redistribute their mass uniformly, the
/// standard convention — a restarted local search starts anywhere.
pub fn pagerank(g: &FitnessFlowGraph, params: &PageRankParams) -> Vec<f64> {
    let n = g.len();
    assert!(n > 0, "empty graph");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    // Precompute in-edges as (source, out_degree) per target for cache-
    // friendly pulls: transpose the CSR.
    let mut in_offsets = vec![0u32; n + 1];
    for u in 0..n {
        for &v in g.out_edges(u) {
            in_offsets[v as usize + 1] += 1;
        }
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut in_edges = vec![0u32; in_offsets[n] as usize];
    let mut cursor = in_offsets.clone();
    for u in 0..n {
        for &v in g.out_edges(u) {
            in_edges[cursor[v as usize] as usize] = u as u32;
            cursor[v as usize] += 1;
        }
    }
    let out_deg: Vec<f64> = (0..n).map(|u| g.out_degree(u) as f64).collect();

    for _ in 0..params.max_iters {
        let dangling_mass: f64 = (0..n).filter(|&u| out_deg[u] == 0.0).map(|u| rank[u]).sum();
        let base = (1.0 - params.damping) * uniform + params.damping * dangling_mass * uniform;
        next.par_iter_mut().enumerate().for_each(|(v, slot)| {
            let from = in_offsets[v] as usize;
            let to = in_offsets[v + 1] as usize;
            let pulled: f64 = in_edges[from..to]
                .iter()
                .map(|&u| rank[u as usize] / out_deg[u as usize])
                .sum();
            *slot = base + params.damping * pulled;
        });
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < params.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::{Landscape, Sample};
    use bat_space::{ConfigSpace, Neighborhood, Param};

    fn graph_from(times: &[f64]) -> FitnessFlowGraph {
        let space = ConfigSpace::builder()
            .param(Param::new("x", (0..times.len() as i64).collect::<Vec<_>>()))
            .build()
            .unwrap();
        let l = Landscape {
            problem: "t".into(),
            platform: "p".into(),
            exhaustive: true,
            samples: times
                .iter()
                .enumerate()
                .map(|(i, &t)| Sample {
                    index: i as u64,
                    time_ms: Some(t),
                })
                .collect(),
        };
        FitnessFlowGraph::build(&space, &l, Neighborhood::Adjacent)
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = graph_from(&[5.0, 4.0, 3.0, 2.0, 1.0, 2.5, 3.5]);
        let pr = pagerank(&g, &PageRankParams::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn sink_of_a_funnel_gets_the_most_mass() {
        let g = graph_from(&[7.0, 6.0, 5.0, 1.0, 5.5, 6.5, 7.5]);
        let pr = pagerank(&g, &PageRankParams::default());
        let max_node = pr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_node, 3, "funnel sink must dominate: {pr:?}");
    }

    #[test]
    fn deeper_basin_attracts_more_than_shallow() {
        // Minima at 1 (deep basin: 4 feeders) and 7 (shallow: 1 feeder).
        let g = graph_from(&[9.0, 1.0, 4.0, 5.0, 6.0, 9.5, 8.0, 2.0]);
        let pr = pagerank(&g, &PageRankParams::default());
        assert!(pr[1] > pr[7], "{pr:?}");
    }

    #[test]
    fn uniform_times_have_uniform_rank() {
        // No improving edges at all: every node dangling, rank uniform.
        let g = graph_from(&[3.0, 3.0, 3.0, 3.0]);
        let pr = pagerank(&g, &PageRankParams::default());
        for r in &pr {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }
}
