//! Sampled landscapes: the central data object of the evaluation.
//!
//! The paper's protocol (§V): exhaustive search of the entire space for
//! Pnpoly, Nbody, GEMM and Convolution; 10 000 random configurations for
//! Hotspot, Dedispersion and Expdist — per architecture. A
//! [`Landscape`] holds the resulting (configuration index → runtime)
//! map plus failure bookkeeping, and feeds every downstream analysis.
//!
//! Evaluation streams in fixed-size chunks directly into the preallocated
//! sample vector: each worker decodes configurations into one reusable
//! scratch (`ConfigSpace::decode_into`) instead of allocating a `Vec<i64>`
//! per index, and no intermediate index vectors are materialized. Chunk
//! *scheduling* is adaptive (compat-rayon `for_each` claims the next
//! pending chunk from a shared cursor when a worker drains its current
//! one), so kernels with skewed per-configuration model costs no longer
//! serialize evaluation behind one statically assigned chunk range.

use rayon::prelude::*;

use bat_core::TuningProblem;
use bat_space::sample_indices_distinct;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One evaluated configuration in a landscape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Dense configuration index.
    pub index: u64,
    /// Noise-free runtime in ms, or `None` for restricted/launch-failed
    /// configurations.
    pub time_ms: Option<f64>,
}

/// A sampled (or exhaustive) view of one benchmark on one platform.
#[derive(Debug, Clone)]
pub struct Landscape {
    /// Benchmark name.
    pub problem: String,
    /// Platform label.
    pub platform: String,
    /// Whether the whole space was enumerated.
    pub exhaustive: bool,
    /// Evaluated configurations, ascending by index.
    pub samples: Vec<Sample>,
}

/// Rows evaluated per scratch-reusing work unit. Small enough to balance
/// load across workers, large enough to amortize the per-chunk closure.
const EVAL_CHUNK: usize = 4096;

/// Evaluate a dense index range `0..card`, streaming: workers fill the
/// preallocated output in place and decode into one per-chunk scratch.
pub(crate) fn evaluate_dense(problem: &dyn TuningProblem, card: u64) -> Vec<Sample> {
    let space = problem.space();
    let n = usize::try_from(card).expect("cardinality exceeds address space");
    let mut samples = vec![
        Sample {
            index: 0,
            time_ms: None,
        };
        n
    ];
    samples
        .par_chunks_mut(EVAL_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut config = vec![0i64; space.num_params()];
            for (k, slot) in chunk.iter_mut().enumerate() {
                let index = (ci * EVAL_CHUNK + k) as u64;
                space.decode_into(index, &mut config);
                *slot = Sample {
                    index,
                    time_ms: problem.evaluate_pure(&config).ok(),
                };
            }
        });
    samples
}

/// Evaluate an explicit index list, streaming as in [`evaluate_dense`].
pub(crate) fn evaluate_sparse(problem: &dyn TuningProblem, indices: &[u64]) -> Vec<Sample> {
    let space = problem.space();
    let mut samples = vec![
        Sample {
            index: 0,
            time_ms: None,
        };
        indices.len()
    ];
    samples
        .par_chunks_mut(EVAL_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut config = vec![0i64; space.num_params()];
            let base = ci * EVAL_CHUNK;
            for (k, slot) in chunk.iter_mut().enumerate() {
                let index = indices[base + k];
                space.decode_into(index, &mut config);
                *slot = Sample {
                    index,
                    time_ms: problem.evaluate_pure(&config).ok(),
                };
            }
        });
    samples
}

impl Landscape {
    /// Exhaustively evaluate `problem` (noise-free), in parallel.
    pub fn exhaustive(problem: &dyn TuningProblem) -> Landscape {
        let card = problem.space().cardinality();
        Landscape {
            problem: problem.name().to_string(),
            platform: problem.platform().to_string(),
            exhaustive: true,
            samples: evaluate_dense(problem, card),
        }
    }

    /// Evaluate `n` distinct uniformly-drawn configurations (the paper's
    /// 10 000-sample protocol for the large spaces).
    pub fn sampled(problem: &dyn TuningProblem, n: usize, seed: u64) -> Landscape {
        let space = problem.space();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices = sample_indices_distinct(space, n, &mut rng);
        indices.sort_unstable();
        Landscape {
            problem: problem.name().to_string(),
            platform: problem.platform().to_string(),
            exhaustive: false,
            samples: evaluate_sparse(problem, &indices),
        }
    }

    /// Runtimes of successful configurations.
    pub fn times(&self) -> Vec<f64> {
        self.samples.iter().filter_map(|s| s.time_ms).collect()
    }

    /// Number of successful (valid) configurations.
    pub fn valid_count(&self) -> usize {
        self.samples.iter().filter(|s| s.time_ms.is_some()).count()
    }

    /// The best (minimum-runtime) sample.
    pub fn best(&self) -> Option<Sample> {
        self.samples
            .iter()
            .filter(|s| s.time_ms.is_some())
            .min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).expect("NaN time"))
            .copied()
    }

    /// Median runtime over successful configurations.
    pub fn median_time(&self) -> Option<f64> {
        let mut t = self.times();
        if t.is_empty() {
            return None;
        }
        t.sort_by(|a, b| a.partial_cmp(b).expect("NaN time"));
        let mid = t.len() / 2;
        Some(if t.len() % 2 == 1 {
            t[mid]
        } else {
            0.5 * (t[mid - 1] + t[mid])
        })
    }

    /// Runtime of a specific configuration index, if sampled and valid.
    pub fn time_of(&self, index: u64) -> Option<f64> {
        self.samples
            .binary_search_by_key(&index, |s| s.index)
            .ok()
            .and_then(|i| self.samples[i].time_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};

    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .param(Param::int_range("y", 0, 9))
            .restrict("x != 3")
            .build()
            .unwrap();
        SyntheticProblem::new("toy", "sim", space, |c| Ok(1.0 + (c[0] + c[1]) as f64))
    }

    #[test]
    fn exhaustive_covers_whole_space() {
        let p = problem();
        let l = Landscape::exhaustive(&p);
        assert_eq!(l.samples.len(), 100);
        assert_eq!(l.valid_count(), 90); // x == 3 column restricted
        assert!(l.exhaustive);
    }

    #[test]
    fn best_and_median_are_correct() {
        let p = problem();
        let l = Landscape::exhaustive(&p);
        let best = l.best().unwrap();
        assert_eq!(best.time_ms, Some(1.0));
        // times are 1 + x + y over the 90 valid cells
        let med = l.median_time().unwrap();
        assert!(med > 1.0 && med < 19.0);
    }

    #[test]
    fn sampled_draws_distinct_indices() {
        let p = problem();
        let l = Landscape::sampled(&p, 40, 7);
        assert_eq!(l.samples.len(), 40);
        let mut idx: Vec<u64> = l.samples.iter().map(|s| s.index).collect();
        let before = idx.len();
        idx.dedup();
        assert_eq!(idx.len(), before);
        assert!(!l.exhaustive);
    }

    #[test]
    fn time_of_looks_up_by_index() {
        let p = problem();
        let l = Landscape::exhaustive(&p);
        assert_eq!(l.time_of(0), Some(1.0));
        assert_eq!(l.time_of(35), None); // x == 3 restricted
    }

    #[test]
    fn deterministic_given_seed() {
        let p = problem();
        let a = Landscape::sampled(&p, 30, 9);
        let b = Landscape::sampled(&p, 30, 9);
        assert_eq!(a.samples, b.samples);
    }
}
