//! Fig. 4: max speedup of the optimal configuration over the median
//! configuration.

use crate::landscape::Landscape;

/// Speedup of the best configuration over the median configuration of a
/// landscape (`median_time / best_time`), the quantity plotted in Fig. 4.
pub fn max_speedup_over_median(l: &Landscape) -> Option<f64> {
    let best = l.best()?.time_ms?;
    let median = l.median_time()?;
    Some(median / best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::Sample;

    fn landscape(times: &[Option<f64>]) -> Landscape {
        Landscape {
            problem: "t".into(),
            platform: "p".into(),
            exhaustive: true,
            samples: times
                .iter()
                .enumerate()
                .map(|(i, &t)| Sample {
                    index: i as u64,
                    time_ms: t,
                })
                .collect(),
        }
    }

    #[test]
    fn computes_median_over_best() {
        let l = landscape(&[Some(10.0), Some(10.0), Some(10.0), Some(2.0), Some(10.0)]);
        // median 10, best 2 -> 5x
        assert!((max_speedup_over_median(&l).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn failures_are_ignored() {
        let l = landscape(&[None, Some(8.0), None, Some(4.0), Some(8.0)]);
        // valid times [8,4,8]: median 8, best 4 -> 2x
        assert!((max_speedup_over_median(&l).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_landscape_is_none() {
        let l = landscape(&[None, None]);
        assert!(max_speedup_over_median(&l).is_none());
    }

    #[test]
    fn uniform_landscape_is_one() {
        let l = landscape(&[Some(3.0); 9]);
        assert!((max_speedup_over_median(&l).unwrap() - 1.0).abs() < 1e-12);
    }
}
