//! Fig. 3: the proportion-of-centrality difficulty metric.
//!
//! For a proportion `p`, take the set of local minima whose runtime is
//! within `(1 + p) · t_opt` (minimization). The metric is the share of
//! PageRank mass those "suitably good" minima hold among all local minima:
//! high values mean a randomized first-improvement local search usually
//! lands somewhere good (easy landscape), low values mean most basins are
//! bad (hard landscape).

use crate::ffg::FitnessFlowGraph;
use crate::pagerank::{pagerank, PageRankParams};

/// Proportion-of-centrality curve over a set of proportions `p`.
#[derive(Debug, Clone)]
pub struct CentralityCurve {
    /// The proportions `p` (e.g. 0.00, 0.05, …, 0.50).
    pub proportions: Vec<f64>,
    /// Proportion of centrality at each `p`.
    pub proportion_of_centrality: Vec<f64>,
    /// Number of local minima in the FFG.
    pub n_minima: usize,
}

/// Compute the proportion-of-centrality curve of an FFG.
pub fn proportion_of_centrality(
    g: &FitnessFlowGraph,
    proportions: &[f64],
    params: &PageRankParams,
) -> CentralityCurve {
    assert!(!g.is_empty(), "empty FFG");
    let pr = pagerank(g, params);
    let minima = g.local_minima();
    let t_opt = g.optimum_time();
    let total_minima_mass: f64 = minima.iter().map(|&u| pr[u]).sum();

    let curve: Vec<f64> = proportions
        .iter()
        .map(|&p| {
            let cutoff = (1.0 + p) * t_opt;
            let good_mass: f64 = minima
                .iter()
                .filter(|&&u| g.node_time[u] <= cutoff)
                .map(|&u| pr[u])
                .sum();
            if total_minima_mass > 0.0 {
                good_mass / total_minima_mass
            } else {
                0.0
            }
        })
        .collect();

    CentralityCurve {
        proportions: proportions.to_vec(),
        proportion_of_centrality: curve,
        n_minima: minima.len(),
    }
}

/// The default proportion grid used for Fig. 3 (0 to 0.5 in steps of 0.05).
pub fn default_proportions() -> Vec<f64> {
    (0..=10).map(|i| i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::{Landscape, Sample};
    use bat_space::{ConfigSpace, Neighborhood, Param};

    fn graph_from(times: &[f64]) -> FitnessFlowGraph {
        let space = ConfigSpace::builder()
            .param(Param::new("x", (0..times.len() as i64).collect::<Vec<_>>()))
            .build()
            .unwrap();
        let l = Landscape {
            problem: "t".into(),
            platform: "p".into(),
            exhaustive: true,
            samples: times
                .iter()
                .enumerate()
                .map(|(i, &t)| Sample {
                    index: i as u64,
                    time_ms: Some(t),
                })
                .collect(),
        };
        FitnessFlowGraph::build(&space, &l, Neighborhood::Adjacent)
    }

    #[test]
    fn curve_is_monotone_in_p() {
        let g = graph_from(&[9.0, 1.0, 4.0, 5.0, 6.0, 9.5, 8.0, 2.0, 3.0, 7.0]);
        let c = proportion_of_centrality(&g, &default_proportions(), &PageRankParams::default());
        for w in c.proportion_of_centrality.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(*c.proportion_of_centrality.last().unwrap() <= 1.0);
    }

    #[test]
    fn single_funnel_is_easy() {
        // One global minimum that every walk reaches: proportion 1 at p=0.
        let g = graph_from(&[7.0, 6.0, 5.0, 1.0, 2.0, 3.0, 4.0]);
        let c = proportion_of_centrality(&g, &[0.0], &PageRankParams::default());
        assert_eq!(c.n_minima, 1);
        assert!((c.proportion_of_centrality[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deceptive_landscape_is_hard_at_p0() {
        // Global minimum in a tiny basin at the edge; big shallow basin
        // elsewhere captures most walks.
        let g = graph_from(&[1.0, 8.0, 5.0, 4.0, 3.0, 2.5, 3.2, 4.2, 5.2, 6.0]);
        let c = proportion_of_centrality(&g, &[0.0, 2.0], &PageRankParams::default());
        assert_eq!(c.n_minima, 2);
        assert!(
            c.proportion_of_centrality[0] < 0.5,
            "deceptive: {:?}",
            c.proportion_of_centrality
        );
        // At huge p every minimum counts as good.
        assert!((c.proportion_of_centrality[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proportions_reported_back() {
        let g = graph_from(&[2.0, 1.0, 2.0]);
        let ps = vec![0.0, 0.1, 0.2];
        let c = proportion_of_centrality(&g, &ps, &PageRankParams::default());
        assert_eq!(c.proportions, ps);
        assert_eq!(c.proportion_of_centrality.len(), 3);
    }
}
