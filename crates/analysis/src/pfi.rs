//! Fig. 6: feature importance of tuning parameters.
//!
//! A GBDT regressor (the CatBoost stand-in) is trained to predict runtime
//! from parameter values over a landscape's valid samples; permutation
//! feature importance then scores each parameter. The paper reports
//! R² ≥ 0.992 for all benchmarks except Convolution (0.9268–0.9361) and
//! reads importance sums > 1 as evidence of parameter interactions.

use bat_ml::{permutation_importance, Dataset, Gbdt, GbdtParams, PfiResult};
use bat_space::ConfigSpace;

use crate::landscape::Landscape;

/// PFI analysis output for one benchmark × platform.
#[derive(Debug, Clone)]
pub struct FeatureImportance {
    /// The underlying PFI result (baseline R², per-feature importances).
    pub pfi: PfiResult,
    /// R² of the regressor on its training set (the paper's Fig. 6 context
    /// reports in-sample fit quality).
    pub r2: f64,
}

/// Build the regression dataset of a landscape: features are parameter
/// values, target is log-runtime (runtimes span orders of magnitude).
/// Decodes into one reusable scratch and builds the flat row-major matrix
/// directly — no per-sample row allocations.
pub fn landscape_dataset(space: &ConfigSpace, l: &Landscape) -> Option<Dataset> {
    let names: Vec<String> = space.names().to_vec();
    let d = space.num_params();
    let mut x: Vec<f64> = Vec::with_capacity(l.samples.len() * d);
    let mut y = Vec::with_capacity(l.samples.len());
    let mut cfg = vec![0i64; d];
    for s in &l.samples {
        if let Some(t) = s.time_ms {
            space.decode_into(s.index, &mut cfg);
            x.extend(cfg.iter().map(|&v| v as f64));
            y.push(t.max(1e-12).ln());
        }
    }
    if y.is_empty() {
        return None;
    }
    Some(Dataset::from_flat(x, y, d, names))
}

/// Train the regressor and compute permutation importances.
pub fn feature_importance(
    space: &ConfigSpace,
    l: &Landscape,
    params: &GbdtParams,
    n_repeats: usize,
    seed: u64,
) -> Option<FeatureImportance> {
    let data = landscape_dataset(space, l)?;
    let model = Gbdt::fit(&data, params);
    let pred = model.predict_dataset(&data);
    let r2 = bat_ml::r2_score(data.targets(), &pred);
    let pfi = permutation_importance(&model, &data, n_repeats, seed);
    Some(FeatureImportance { pfi, r2 })
}

/// Default GBDT settings for the Fig. 6 protocol.
pub fn default_gbdt_params() -> GbdtParams {
    GbdtParams {
        n_trees: 300,
        learning_rate: 0.1,
        tree: bat_ml::TreeParams {
            max_depth: 8,
            min_samples_leaf: 3,
            ..bat_ml::TreeParams::default()
        },
        subsample: 0.9,
        seed: 17,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::Landscape;
    use bat_core::{SyntheticProblem, TuningProblem};
    use bat_space::{ConfigSpace, Param};

    fn problem_space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("important", vec![1, 2, 4, 8, 16]))
            .param(Param::new("irrelevant", vec![0, 1, 2, 3]))
            .build()
            .unwrap()
    }

    #[test]
    fn importance_identifies_the_load_bearing_parameter() {
        let p = SyntheticProblem::new("toy", "sim", problem_space(), |c| Ok(100.0 / c[0] as f64));
        let l = Landscape::exhaustive(&p);
        let fi = feature_importance(p.space(), &l, &default_gbdt_params(), 3, 1).unwrap();
        assert!(fi.r2 > 0.99, "R² = {}", fi.r2);
        let names = fi.pfi.important_features(0.05);
        assert_eq!(names, vec!["important".to_string()]);
    }

    #[test]
    fn dataset_excludes_failures() {
        let p = SyntheticProblem::new("toy", "sim", problem_space(), |c| {
            if c[1] == 3 {
                Err(bat_core::EvalFailure::Launch("nope".into()))
            } else {
                Ok(1.0 + c[0] as f64)
            }
        });
        let l = Landscape::exhaustive(&p);
        let data = landscape_dataset(p.space(), &l).unwrap();
        assert_eq!(data.n_rows(), 15); // 5 * 3 valid combinations
    }

    #[test]
    fn empty_landscape_gives_none() {
        let p = SyntheticProblem::new("toy", "sim", problem_space(), |_| {
            Err(bat_core::EvalFailure::Restricted)
        });
        let l = Landscape::exhaustive(&p);
        assert!(landscape_dataset(p.space(), &l).is_none());
        assert!(feature_importance(p.space(), &l, &default_gbdt_params(), 2, 0).is_none());
    }
}
