//! Fitness flow graphs (Schoonhoven et al.).
//!
//! The FFG contains every valid configuration as a node and a directed edge
//! to each neighbouring configuration with strictly lower runtime. A random
//! walk on the FFG mimics a randomized first-improvement local search;
//! nodes without outgoing edges are the local minima.

use rayon::prelude::*;

use bat_space::{ConfigSpace, Neighborhood};

use crate::landscape::Landscape;

/// A fitness flow graph in CSR form over the valid samples of a landscape.
#[derive(Debug, Clone)]
pub struct FitnessFlowGraph {
    /// Configuration index of each node.
    pub node_index: Vec<u64>,
    /// Runtime of each node.
    pub node_time: Vec<f64>,
    /// CSR row offsets into `edges`.
    pub offsets: Vec<u32>,
    /// Flattened out-edge targets (node ids).
    pub edges: Vec<u32>,
}

impl FitnessFlowGraph {
    /// Build the FFG of a landscape under `neighborhood`.
    ///
    /// Only sampled, valid configurations become nodes; edges connect
    /// sampled pairs (for exhaustive landscapes this is the full FFG of the
    /// paper's metric).
    pub fn build(
        space: &ConfigSpace,
        landscape: &Landscape,
        neighborhood: Neighborhood,
    ) -> FitnessFlowGraph {
        let nodes: Vec<(u64, f64)> = landscape
            .samples
            .iter()
            .filter_map(|s| s.time_ms.map(|t| (s.index, t)))
            .collect();
        let node_index: Vec<u64> = nodes.iter().map(|&(i, _)| i).collect();
        let node_time: Vec<f64> = nodes.iter().map(|&(_, t)| t).collect();

        // Adjacency by binary search over the sorted node_index.
        let adj: Vec<Vec<u32>> = (0..nodes.len())
            .into_par_iter()
            .map(|u| {
                let (idx, t) = nodes[u];
                let mut out = Vec::new();
                neighborhood.for_each_neighbor(space, idx, |n| {
                    if let Ok(v) = node_index.binary_search(&n) {
                        if node_time[v] < t {
                            out.push(v as u32);
                        }
                    }
                });
                out
            })
            .collect();

        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0u32);
        for a in &adj {
            edges.extend_from_slice(a);
            offsets.push(edges.len() as u32);
        }
        FitnessFlowGraph {
            node_index,
            node_time,
            offsets,
            edges,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_index.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_index.is_empty()
    }

    /// Out-degree of node `u`.
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Out-edges of node `u`.
    #[inline]
    pub fn out_edges(&self, u: usize) -> &[u32] {
        &self.edges[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Node ids of local minima (no outgoing improving edge).
    pub fn local_minima(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&u| self.out_degree(u) == 0)
            .collect()
    }

    /// Runtime of the global optimum.
    pub fn optimum_time(&self) -> f64 {
        self.node_time.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::Sample;
    use bat_space::Param;

    fn line_space(n: i64) -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("x", (0..n).collect::<Vec<_>>()))
            .build()
            .unwrap()
    }

    fn landscape_from(times: &[f64]) -> Landscape {
        Landscape {
            problem: "t".into(),
            platform: "p".into(),
            exhaustive: true,
            samples: times
                .iter()
                .enumerate()
                .map(|(i, &t)| Sample {
                    index: i as u64,
                    time_ms: Some(t),
                })
                .collect(),
        }
    }

    #[test]
    fn v_shaped_landscape_has_one_minimum() {
        let space = line_space(7);
        let l = landscape_from(&[7.0, 5.0, 3.0, 1.0, 3.0, 5.0, 7.0]);
        let g = FitnessFlowGraph::build(&space, &l, Neighborhood::Adjacent);
        assert_eq!(g.len(), 7);
        assert_eq!(g.local_minima(), vec![3]);
        assert_eq!(g.optimum_time(), 1.0);
    }

    #[test]
    fn two_basins_have_two_minima() {
        let space = line_space(7);
        let l = landscape_from(&[3.0, 1.0, 3.0, 5.0, 3.0, 2.0, 3.0]);
        let g = FitnessFlowGraph::build(&space, &l, Neighborhood::Adjacent);
        let minima = g.local_minima();
        assert_eq!(minima, vec![1, 5]);
    }

    #[test]
    fn edges_point_downhill_only() {
        let space = line_space(5);
        let l = landscape_from(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        let g = FitnessFlowGraph::build(&space, &l, Neighborhood::Adjacent);
        for u in 0..g.len() {
            for &v in g.out_edges(u) {
                assert!(g.node_time[v as usize] < g.node_time[u]);
            }
        }
        // Monotone slope: every interior node has exactly one downhill edge.
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn invalid_samples_are_excluded() {
        let space = line_space(4);
        let mut l = landscape_from(&[4.0, 3.0, 2.0, 1.0]);
        l.samples[1].time_ms = None;
        let g = FitnessFlowGraph::build(&space, &l, Neighborhood::Adjacent);
        assert_eq!(g.len(), 3);
        assert_eq!(g.node_index, vec![0, 2, 3]);
    }

    #[test]
    fn hamming_neighborhood_connects_across_values() {
        let space = line_space(5);
        let l = landscape_from(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        let g = FitnessFlowGraph::build(&space, &l, Neighborhood::HammingAny);
        // With Hamming-any, node 0 sees all 4 better nodes.
        assert_eq!(g.out_degree(0), 4);
    }
}
