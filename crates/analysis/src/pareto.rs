//! Pareto-front reducers for multi-objective campaign artifacts.
//!
//! These are offline aggregations in the spirit of the suite's other
//! summary reducers: given the `(time_ms, energy_mj)` fronts recorded by
//! multi-objective trials, they produce the scalar quality numbers the
//! campaign summary tables report — dominated hypervolume against a
//! deterministic cell-wide reference point, and front cardinality. The
//! geometric primitives ([`bat_moo::hypervolume_2d`],
//! [`bat_moo::pareto_front_2d`]) live in `bat-moo`; this module fixes the
//! *protocol* (reference choice, normalization) so every front-end reports
//! comparable numbers.

use bat_moo::{hypervolume_2d, pareto_front_2d, ParetoArchive, ParetoPoint};

/// Margin applied to the cell-wide worst point when deriving the
/// hypervolume reference, so boundary points contribute non-zero volume.
const REFERENCE_MARGIN: f64 = 1.01;

/// Scalar quality of one trial's front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontSummary {
    /// Dominated hypervolume w.r.t. the shared reference point.
    pub hypervolume: f64,
    /// Number of non-dominated points.
    pub front_size: usize,
    /// Fastest point's time (ms).
    pub best_time_ms: f64,
    /// Most frugal point's energy (mJ).
    pub best_energy_mj: f64,
}

/// The shared hypervolume reference of a set of fronts: the componentwise
/// worst objective over every point, pushed out by [`REFERENCE_MARGIN`].
/// Deterministic given the fronts, `None` when no front has any point.
///
/// All fronts of one benchmark × architecture cell must be summarized
/// against the *same* reference — hypervolumes against private references
/// are not comparable.
pub fn hypervolume_reference<'a, I>(fronts: I) -> Option<(f64, f64)>
where
    I: IntoIterator<Item = &'a [(f64, f64)]>,
{
    let mut worst: Option<(f64, f64)> = None;
    for front in fronts {
        for &(t, e) in front {
            worst = Some(match worst {
                Some((wt, we)) => (wt.max(t), we.max(e)),
                None => (t, e),
            });
        }
    }
    worst.map(|(t, e)| (t * REFERENCE_MARGIN, e * REFERENCE_MARGIN))
}

/// Union several recorded fronts into one bounded [`ParetoArchive`] — the
/// *best-known front* of a benchmark × architecture cell, merged across
/// every tuner and repetition that recorded points there (ROADMAP
/// follow-up (k)).
///
/// Points are offered in iteration order (campaign artifacts iterate
/// trials canonically), and the archive resolves domination and crowding
/// ties deterministically, so the merged front is a pure function of the
/// artifact.
pub fn merged_front<'a, I>(fronts: I, capacity: usize) -> ParetoArchive
where
    I: IntoIterator<Item = &'a [ParetoPoint]>,
{
    let mut archive = ParetoArchive::new(capacity.max(1));
    for front in fronts {
        for &p in front {
            archive.insert(p);
        }
    }
    archive
}

/// Reduce one front against a shared reference point.
pub fn front_summary(points: &[(f64, f64)], reference: (f64, f64)) -> Option<FrontSummary> {
    let front = pareto_front_2d(points);
    if front.is_empty() {
        return None;
    }
    let best_time_ms = front.first().unwrap().0;
    let best_energy_mj = front.last().unwrap().1;
    Some(FrontSummary {
        hypervolume: hypervolume_2d(&front, reference),
        front_size: front.len(),
        best_time_ms,
        best_energy_mj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_the_padded_componentwise_worst() {
        let a: &[(f64, f64)] = &[(1.0, 8.0), (2.0, 4.0)];
        let b: &[(f64, f64)] = &[(5.0, 2.0)];
        let (rt, re) = hypervolume_reference([a, b]).unwrap();
        assert!((rt - 5.0 * REFERENCE_MARGIN).abs() < 1e-12);
        assert!((re - 8.0 * REFERENCE_MARGIN).abs() < 1e-12);
        assert_eq!(
            hypervolume_reference(std::iter::empty::<&[(f64, f64)]>()),
            None
        );
    }

    #[test]
    fn front_summary_reports_extremes_and_size() {
        let pts = vec![(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (2.5, 2.5)];
        let s = front_summary(&pts, (4.0, 4.0)).unwrap();
        assert_eq!(s.front_size, 3);
        assert_eq!(s.best_time_ms, 1.0);
        assert_eq!(s.best_energy_mj, 1.0);
        assert!(s.hypervolume > 0.0);
        assert!(front_summary(&[], (4.0, 4.0)).is_none());
    }

    #[test]
    fn merged_front_unions_and_prunes_dominated_points() {
        let p = |i: u64, t: f64, e: f64| ParetoPoint {
            index: i,
            time_ms: t,
            energy_mj: e,
        };
        let a = vec![p(0, 1.0, 5.0), p(1, 3.0, 3.0)];
        let b = vec![p(2, 2.0, 4.0), p(3, 3.5, 3.5), p(4, 5.0, 1.0)];
        let merged = merged_front([a.as_slice(), b.as_slice()], 16);
        merged.check_invariants().unwrap();
        let idx: Vec<u64> = merged.front().iter().map(|q| q.index).collect();
        // (3.5, 3.5) is dominated by (3, 3); everything else survives.
        assert_eq!(idx, vec![0, 2, 1, 4]);
        // Deterministic given the same inputs.
        assert_eq!(merged, merged_front([a.as_slice(), b.as_slice()], 16));
        // Capacity bound is honoured.
        assert!(merged_front([a.as_slice(), b.as_slice()], 2).len() <= 2);
    }

    #[test]
    fn dominating_fronts_have_larger_hypervolume_under_a_shared_reference() {
        let strong: &[(f64, f64)] = &[(1.0, 2.0), (2.0, 1.0)];
        let weak: &[(f64, f64)] = &[(1.5, 2.5), (2.5, 1.5)];
        let r = hypervolume_reference([strong, weak]).unwrap();
        let hv_strong = front_summary(strong, r).unwrap().hypervolume;
        let hv_weak = front_summary(weak, r).unwrap().hypervolume;
        assert!(hv_strong > hv_weak);
    }
}
