//! Fig. 2: convergence of random search towards the optimum.
//!
//! The paper's protocol: random-sample the (exhaustive or 10 000-point)
//! landscape 100 times, track the best-so-far runtime after each function
//! evaluation, and plot the *median* across repetitions of the relative
//! performance `t_opt / t_best_so_far` against evaluations (symlog x-axis).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Median-of-repetitions convergence curve.
#[derive(Debug, Clone)]
pub struct ConvergenceCurve {
    /// Evaluation counts at which the curve is reported (log-spaced).
    pub evals: Vec<usize>,
    /// Median relative performance (t_opt / best_so_far) at each count.
    pub median_rel_perf: Vec<f64>,
}

impl ConvergenceCurve {
    /// Evaluations needed to first reach `threshold` relative performance
    /// (e.g. 0.9 for the paper's "90% of optimum after N evaluations").
    pub fn evals_to_reach(&self, threshold: f64) -> Option<usize> {
        self.evals
            .iter()
            .zip(&self.median_rel_perf)
            .find(|(_, &r)| r >= threshold)
            .map(|(&e, _)| e)
    }
}

/// First evaluation count at which a best-so-far step curve reaches a
/// target objective.
///
/// `curve` is a `(eval, best_so_far)` step function as recorded by tuning
/// trials (strictly increasing evals, non-increasing best). Returns the
/// eval index of the first point whose best is at or below `target`, or
/// `None` if the trial never got there. Used by the resilience reducers to
/// measure how many extra evaluations faults cost a tuner before it
/// reaches a fixed quality level.
pub fn evals_to_target(curve: &[(u64, f64)], target: f64) -> Option<u64> {
    if !target.is_finite() {
        return None;
    }
    curve.iter().find(|(_, b)| *b <= target).map(|(e, _)| *e)
}

/// Simulate random search over a pre-evaluated landscape.
///
/// `times` are the runtimes of the landscape's configurations; failed
/// configurations are represented by `None` and consume an evaluation
/// without improving the best (as on real hardware).
pub fn random_search_convergence(
    times: &[Option<f64>],
    max_evals: usize,
    repetitions: usize,
    seed: u64,
) -> ConvergenceCurve {
    assert!(!times.is_empty());
    let t_opt = times.iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
    assert!(t_opt.is_finite(), "landscape has no valid configuration");

    let checkpoints = log_spaced(max_evals);

    // Per repetition: best-so-far at each checkpoint.
    let per_rep: Vec<Vec<f64>> = (0..repetitions)
        .into_par_iter()
        .map(|rep| {
            let mut rng = StdRng::seed_from_u64(seed ^ (rep as u64).wrapping_mul(0x9e37));
            let mut best = f64::INFINITY;
            let mut out = Vec::with_capacity(checkpoints.len());
            let mut next_cp = 0;
            for e in 1..=max_evals {
                let draw = times[rng.random_range(0..times.len())];
                if let Some(t) = draw {
                    best = best.min(t);
                }
                if next_cp < checkpoints.len() && e == checkpoints[next_cp] {
                    out.push(if best.is_finite() { t_opt / best } else { 0.0 });
                    next_cp += 1;
                }
            }
            out
        })
        .collect();

    // Median across repetitions at each checkpoint.
    let median_rel_perf: Vec<f64> = (0..checkpoints.len())
        .map(|c| {
            let mut column: Vec<f64> = per_rep.iter().map(|r| r[c]).collect();
            column.sort_by(|a, b| a.partial_cmp(b).expect("NaN rel perf"));
            let mid = column.len() / 2;
            if column.len() % 2 == 1 {
                column[mid]
            } else {
                0.5 * (column[mid - 1] + column[mid])
            }
        })
        .collect();

    ConvergenceCurve {
        evals: checkpoints,
        median_rel_perf,
    }
}

/// Log-spaced checkpoints 1, 2, …, 10, 13, 18, … up to `max_evals`
/// (dense start, then ×1.3 growth), always including `max_evals`.
fn log_spaced(max_evals: usize) -> Vec<usize> {
    let mut out: Vec<usize> = (1..=10.min(max_evals)).collect();
    let mut v = 10.0f64;
    while (v * 1.3) < max_evals as f64 {
        v *= 1.3;
        out.push(v.round() as usize);
    }
    if *out.last().unwrap() != max_evals {
        out.push(max_evals);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_one() {
        let times: Vec<Option<f64>> = (1..=100).map(|i| Some(f64::from(i))).collect();
        let c = random_search_convergence(&times, 2000, 50, 1);
        let last = *c.median_rel_perf.last().unwrap();
        assert!(last > 0.99, "should find the optimum, got {last}");
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let times: Vec<Option<f64>> = (1..=500).map(|i| Some(f64::from(i % 97 + 1))).collect();
        let c = random_search_convergence(&times, 1000, 30, 2);
        for w in c.median_rel_perf.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn failures_slow_convergence() {
        let good: Vec<Option<f64>> = (1..=50).map(|i| Some(f64::from(i))).collect();
        let mut flaky = good.clone();
        flaky.extend(std::iter::repeat_n(None, 450)); // 90% failures
        let cg = random_search_convergence(&good, 100, 40, 3);
        let cf = random_search_convergence(&flaky, 100, 40, 3);
        let at_10 = |c: &ConvergenceCurve| {
            c.evals
                .iter()
                .position(|&e| e == 10)
                .map(|i| c.median_rel_perf[i])
                .unwrap()
        };
        assert!(at_10(&cg) > at_10(&cf));
    }

    #[test]
    fn evals_to_reach_threshold() {
        let times: Vec<Option<f64>> = (1..=10).map(|i| Some(f64::from(i))).collect();
        let c = random_search_convergence(&times, 500, 60, 4);
        let n90 = c.evals_to_reach(0.9).unwrap();
        assert!(n90 <= 50, "tiny pool must converge fast, got {n90}");
        assert!(c.evals_to_reach(2.0).is_none());
    }

    #[test]
    fn evals_to_target_walks_the_step_curve() {
        let curve = [(1, 9.0), (4, 5.0), (20, 2.5)];
        assert_eq!(evals_to_target(&curve, 10.0), Some(1));
        assert_eq!(evals_to_target(&curve, 5.0), Some(4));
        assert_eq!(evals_to_target(&curve, 2.6), Some(20));
        assert_eq!(evals_to_target(&curve, 1.0), None);
        assert_eq!(evals_to_target(&curve, f64::NAN), None);
        assert_eq!(evals_to_target(&[], 1.0), None);
    }

    #[test]
    fn log_spacing_is_dense_then_sparse() {
        let cps = log_spaced(1000);
        assert_eq!(&cps[..10], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(*cps.last().unwrap(), 1000);
        assert!(cps.windows(2).all(|w| w[1] > w[0]));
    }
}
