//! Dynamic (online) autotuning — KTT's flagship mode (Petrovič et al.,
//! the paper's reference [7]: "...and its Dynamic Autotuning with Kernel
//! Tuning Toolkit").
//!
//! Offline tuning measures *best configuration found per evaluation
//! budget*. Dynamic autotuning answers the question an application author
//! actually has: if my program invokes this kernel `N` times, does tuning
//! *during the run* pay for itself? The simulation charges every explored
//! configuration's real runtime (and a fallback re-run for launch
//! failures) against the application's time-to-solution, then exploits the
//! best configuration found for the remaining invocations. Comparing
//! against the static-default and oracle baselines gives the break-even
//! invocation count.

use bat_core::{Evaluator, Protocol, TuningProblem};
use bat_tuners::Tuner;

/// How the simulated application schedules tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlinePolicy {
    /// Explore with the tuner for the first `tuning_budget` invocations,
    /// then run the best configuration found for the rest.
    TuneThenExploit {
        /// Invocations spent exploring.
        tuning_budget: u64,
    },
    /// Never tune: run the default configuration every time (the static
    /// baseline an untuned application pays).
    StaticDefault,
}

/// Settings of one online-tuning simulation.
#[derive(Debug, Clone, Copy)]
pub struct OnlineSimulation {
    /// Total kernel invocations the application performs.
    pub invocations: usize,
    /// Scheduling policy.
    pub policy: OnlinePolicy,
    /// Measurement protocol for each invocation.
    pub protocol: Protocol,
}

impl OnlineSimulation {
    /// Simulate the application. `default_index` is the configuration an
    /// untuned application would hardcode (`None` = the lowest-index
    /// configuration that runs successfully, scanning from 0 — the
    /// "first thing that worked" default). `oracle_ms` is the per-invocation
    /// optimum, when ground truth is known.
    pub fn run(
        &self,
        problem: &dyn TuningProblem,
        tuner: &dyn Tuner,
        default_index: Option<u64>,
        oracle_ms: Option<f64>,
        seed: u64,
    ) -> OnlineTrace {
        assert!(self.invocations > 0, "application must run at least once");

        // Resolve the untuned default and its cost (unbudgeted probe).
        let probe = Evaluator::with_protocol(problem, self.protocol);
        let (default_index, default_ms) = match default_index {
            Some(idx) => {
                let m = probe
                    .evaluate_index(idx)
                    .expect("no budget set")
                    .unwrap_or_else(|e| panic!("default configuration {idx} fails: {e:?}"));
                (idx, m.time_ms)
            }
            None => {
                let card = problem.space().cardinality();
                (0..card)
                    .find_map(|idx| {
                        probe
                            .evaluate_index(idx)
                            .expect("no budget set")
                            .ok()
                            .map(|m| (idx, m.time_ms))
                    })
                    .expect("no configuration runs at all")
            }
        };

        let mut costs = Vec::with_capacity(self.invocations);
        let mut tuned_index = default_index;
        let mut tuned_ms = default_ms;

        match self.policy {
            OnlinePolicy::StaticDefault => {
                costs.resize(self.invocations, default_ms);
            }
            OnlinePolicy::TuneThenExploit { tuning_budget } => {
                let explore = (tuning_budget as usize).min(self.invocations);
                let eval =
                    Evaluator::with_protocol(problem, self.protocol).with_budget(explore as u64);
                let run = tuner.tune(&eval, seed);
                for trial in run.trials.iter().take(explore) {
                    match &trial.outcome {
                        // A successful exploration invocation does the
                        // application's work at the explored config's speed.
                        Ok(m) => costs.push(m.time_ms),
                        // A failed launch costs a re-run with the default.
                        Err(_) => costs.push(default_ms),
                    }
                }
                // Tuners may stop early (e.g. exhaustive on tiny spaces):
                // unspent exploration slots run the default.
                while costs.len() < explore {
                    costs.push(default_ms);
                }
                if let Some(best) = run.best() {
                    tuned_index = best.index;
                    tuned_ms = best.time_ms().expect("best() only returns successes");
                }
                costs.resize(self.invocations, tuned_ms);
            }
        }

        let total_ms = costs.iter().sum();
        OnlineTrace {
            costs,
            default_index,
            default_ms,
            tuned_index,
            tuned_ms,
            total_ms,
            static_ms: default_ms * self.invocations as f64,
            oracle_ms: oracle_ms.map(|o| o * self.invocations as f64),
        }
    }
}

/// Time-to-solution record of one simulated application run.
#[derive(Debug, Clone)]
pub struct OnlineTrace {
    /// Wall-clock cost charged per invocation.
    pub costs: Vec<f64>,
    /// The untuned default configuration.
    pub default_index: u64,
    /// Per-invocation cost of the default.
    pub default_ms: f64,
    /// Configuration exploited after tuning.
    pub tuned_index: u64,
    /// Per-invocation cost of the exploited configuration.
    pub tuned_ms: f64,
    /// Total time-to-solution of this policy.
    pub total_ms: f64,
    /// Time-to-solution of the static-default baseline.
    pub static_ms: f64,
    /// Time-to-solution of the oracle (optimal config from invocation 0),
    /// when ground truth was supplied.
    pub oracle_ms: Option<f64>,
}

impl OnlineTrace {
    /// Speedup of this policy over never tuning.
    pub fn speedup_over_static(&self) -> f64 {
        self.static_ms / self.total_ms
    }

    /// Overhead relative to the oracle (1.0 = tuning was free).
    pub fn overhead_vs_oracle(&self) -> Option<f64> {
        self.oracle_ms.map(|o| self.total_ms / o)
    }

    /// First invocation at which cumulative online time undercuts the
    /// cumulative static-default time (`None` if tuning never pays off
    /// within this run).
    pub fn break_even(&self) -> Option<usize> {
        let mut cum = 0.0;
        for (i, c) in self.costs.iter().enumerate() {
            cum += c;
            if cum < self.default_ms * (i + 1) as f64 {
                return Some(i + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};
    use bat_tuners::RandomSearch;

    /// Index 0 (x=0, y=0) is valid but slow; optimum (x=9, y=9) is 1 ms.
    fn problem(
    ) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .param(Param::int_range("y", 0, 9))
            .build()
            .unwrap();
        SyntheticProblem::new("online-toy", "sim", space, |v| {
            Ok(1.0 + (9 - v[0]) as f64 + (9 - v[1]) as f64)
        })
    }

    fn sim(invocations: usize, budget: u64) -> OnlineSimulation {
        OnlineSimulation {
            invocations,
            policy: OnlinePolicy::TuneThenExploit {
                tuning_budget: budget,
            },
            protocol: Protocol::noiseless(),
        }
    }

    #[test]
    fn online_tuning_pays_off_on_long_runs() {
        let p = problem();
        let trace = sim(2000, 100).run(&p, &RandomSearch, None, Some(1.0), 0);
        assert_eq!(trace.costs.len(), 2000);
        assert!(
            trace.speedup_over_static() > 2.0,
            "speedup {}",
            trace.speedup_over_static()
        );
        // Tuning overhead keeps it above the oracle, but not absurdly.
        let overhead = trace.overhead_vs_oracle().unwrap();
        assert!(overhead > 1.0 && overhead < 3.0, "overhead {overhead}");
        assert!(trace.break_even().is_some());
    }

    #[test]
    fn short_runs_may_not_amortize() {
        let p = problem();
        // 10 invocations, all spent exploring: no exploitation phase.
        let trace = sim(10, 10).run(&p, &RandomSearch, None, Some(1.0), 0);
        assert_eq!(trace.costs.len(), 10);
        // Exploration costs ≥ optimal each time.
        assert!(trace.total_ms >= 10.0);
    }

    #[test]
    fn static_policy_charges_default_every_time() {
        let p = problem();
        let s = OnlineSimulation {
            invocations: 50,
            policy: OnlinePolicy::StaticDefault,
            protocol: Protocol::noiseless(),
        };
        let trace = s.run(&p, &RandomSearch, None, None, 0);
        // Default = index 0 = (x=0,y=0) = 19 ms.
        assert_eq!(trace.default_index, 0);
        assert!((trace.default_ms - 19.0).abs() < 1e-9);
        assert!(trace.costs.iter().all(|&c| (c - 19.0).abs() < 1e-9));
        assert!((trace.total_ms - trace.static_ms).abs() < 1e-9);
        assert_eq!(trace.break_even(), None);
        assert!((trace.speedup_over_static() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_default_is_respected() {
        let p = problem();
        let space_idx = 99; // (x=9, y=9): the optimum as default
        let trace = sim(100, 20).run(&p, &RandomSearch, Some(space_idx), Some(1.0), 1);
        assert_eq!(trace.default_index, 99);
        assert!((trace.default_ms - 1.0).abs() < 1e-9);
        // Tuning cannot beat an already-optimal default.
        assert!(trace.speedup_over_static() <= 1.0 + 1e-9);
    }

    #[test]
    fn failures_cost_a_default_rerun() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        let p = SyntheticProblem::new("half-fail", "sim", space, |v| {
            if v[0] % 2 == 1 {
                Err(bat_core::EvalFailure::Launch("odd x".into()))
            } else {
                Ok(10.0 - v[0] as f64)
            }
        });
        let trace = sim(200, 50).run(&p, &RandomSearch, None, None, 3);
        assert_eq!(trace.costs.len(), 200);
        assert!(trace.costs.iter().all(|c| c.is_finite() && *c > 0.0));
        // Exploitation uses the best even config (x=8 → 2 ms).
        assert!((trace.tuned_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn budget_larger_than_invocations_is_clamped() {
        let p = problem();
        let trace = sim(30, 500).run(&p, &RandomSearch, None, None, 0);
        assert_eq!(trace.costs.len(), 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = problem();
        let a = sim(300, 60).run(&p, &RandomSearch, None, None, 9);
        let b = sim(300, 60).run(&p, &RandomSearch, None, None, 9);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.tuned_index, b.tuned_index);
    }

    #[test]
    fn informed_tuner_amortizes_faster_than_random() {
        let p = problem();
        let ls = bat_tuners::LocalSearch::default();
        let random_total = sim(1000, 80).run(&p, &RandomSearch, None, None, 2).total_ms;
        let local_total = sim(1000, 80).run(&p, &ls, None, None, 2).total_ms;
        // Local search climbs the smooth bowl quickly, so its
        // time-to-solution is at least competitive.
        assert!(
            local_total <= random_total * 1.15,
            "local {local_total} vs random {random_total}"
        );
    }
}
