//! Classical search-difficulty metrics complementing the paper's
//! proportion-of-centrality (Fig. 3): fitness-distance correlation,
//! random-walk autocorrelation / correlation length, and local-minima
//! statistics.
//!
//! The paper names "search space difficulty" as one of the questions the
//! suite exists to study; centrality captures *reachability* of good
//! minima, while the metrics here capture *global structure* (does fitness
//! guide toward the optimum?) and *ruggedness* (how fast does fitness
//! decorrelate along a walk?). Together they characterize a benchmark's
//! landscape the way the optimization-benchmarking literature does.

use bat_space::{ConfigSpace, Neighborhood};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ffg::FitnessFlowGraph;
use crate::landscape::Landscape;

/// Search-difficulty metrics of one benchmark × architecture landscape.
#[derive(Debug, Clone)]
pub struct DifficultyReport {
    /// Fitness-distance correlation: Pearson correlation between a
    /// configuration's runtime and its Hamming distance to the optimum.
    /// For minimization, **positive** FDC means fitness guides search
    /// toward the optimum (easy); near zero means no global structure;
    /// negative means deceptive.
    pub fdc: f64,
    /// Random-walk autocorrelation ρ(k) of runtimes at lags `1..=max_lag`.
    /// All-NaN when the landscape is sampled too sparsely for walks (no
    /// sampled configuration has a sampled neighbour) — walk metrics need
    /// an exhaustive or dense landscape, exactly like the paper's
    /// centrality metric (§VI-C computes it only for the exhaustively
    /// searched benchmarks).
    pub autocorrelation: Vec<f64>,
    /// Correlation length ℓ = −1 / ln |ρ(1)| — walks stay correlated for
    /// about ℓ steps; smaller = more rugged. NaN when walks were not
    /// possible.
    pub correlation_length: f64,
    /// Number of local minima in the (sampled) fitness flow graph.
    pub n_local_minima: usize,
    /// Mean relative quality `t_opt / t_min` over the local minima
    /// (1.0 = every minimum is globally optimal).
    pub minima_mean_quality: f64,
}

/// Compute all difficulty metrics of `landscape` under `neighborhood`.
///
/// `walks` random walks of length `walk_len` estimate the
/// autocorrelation; both default sensibly via [`difficulty_default`].
/// Walks move to uniformly-drawn *valid sampled* neighbours, matching the
/// FFG's node set, so the metrics describe the same graph.
pub fn difficulty(
    space: &ConfigSpace,
    landscape: &Landscape,
    neighborhood: Neighborhood,
    walks: usize,
    walk_len: usize,
    max_lag: usize,
    seed: u64,
) -> DifficultyReport {
    assert!(max_lag >= 1, "need at least lag 1");
    assert!(walk_len > max_lag, "walks must be longer than the max lag");
    let ffg = FitnessFlowGraph::build(space, landscape, neighborhood);
    assert!(!ffg.is_empty(), "landscape has no valid configuration");

    let fdc = fitness_distance_correlation(space, &ffg);
    let autocorrelation =
        walk_autocorrelation(space, &ffg, neighborhood, walks, walk_len, max_lag, seed);
    let rho1 = autocorrelation[0];
    let correlation_length = if rho1.is_nan() {
        f64::NAN
    } else if rho1.abs() >= 1.0 {
        f64::INFINITY
    } else if rho1.abs() <= f64::EPSILON {
        0.0
    } else {
        -1.0 / rho1.abs().ln()
    };

    let minima = ffg.local_minima();
    let t_opt = ffg.optimum_time();
    let minima_mean_quality = if minima.is_empty() {
        f64::NAN
    } else {
        minima
            .iter()
            .map(|&m| t_opt / ffg.node_time[m])
            .sum::<f64>()
            / minima.len() as f64
    };

    DifficultyReport {
        fdc,
        autocorrelation,
        correlation_length,
        n_local_minima: minima.len(),
        minima_mean_quality,
    }
}

/// [`difficulty`] with the defaults used by the CLI and benches: Hamming-1
/// ("any") neighbourhood, 64 walks of 200 steps, lags up to 10.
pub fn difficulty_default(
    space: &ConfigSpace,
    landscape: &Landscape,
    seed: u64,
) -> DifficultyReport {
    difficulty(
        space,
        landscape,
        Neighborhood::HammingAny,
        64,
        200,
        10,
        seed,
    )
}

/// Pearson correlation between runtime and Hamming distance to the best
/// node, over all FFG nodes.
fn fitness_distance_correlation(space: &ConfigSpace, ffg: &FitnessFlowGraph) -> f64 {
    let n = ffg.len();
    let best = (0..n)
        .min_by(|&a, &b| ffg.node_time[a].total_cmp(&ffg.node_time[b]))
        .expect("non-empty");
    let best_cfg = space.config_at(ffg.node_index[best]);

    let dists: Vec<f64> = (0..n)
        .map(|u| {
            let cfg = space.config_at(ffg.node_index[u]);
            cfg.iter().zip(&best_cfg).filter(|(a, b)| a != b).count() as f64
        })
        .collect();
    pearson(&ffg.node_time, &dists)
}

/// Autocorrelation of runtimes along uniform random walks over the FFG's
/// node set (moves to sampled valid neighbours only; isolated nodes end
/// their walk early and contribute the prefix).
fn walk_autocorrelation(
    space: &ConfigSpace,
    ffg: &FitnessFlowGraph,
    neighborhood: Neighborhood,
    walks: usize,
    walk_len: usize,
    max_lag: usize,
    seed: u64,
) -> Vec<f64> {
    let n = ffg.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series: Vec<Vec<f64>> = Vec::with_capacity(walks);
    for _ in 0..walks {
        let mut node = rng.random_range(0..n);
        let mut trace = Vec::with_capacity(walk_len);
        trace.push(ffg.node_time[node]);
        for _ in 1..walk_len {
            // Valid sampled neighbours of the current node.
            let mut nbrs: Vec<usize> = Vec::new();
            neighborhood.for_each_neighbor(space, ffg.node_index[node], |cand| {
                if let Ok(v) = ffg.node_index.binary_search(&cand) {
                    nbrs.push(v);
                }
            });
            if nbrs.is_empty() {
                break;
            }
            node = nbrs[rng.random_range(0..nbrs.len())];
            trace.push(ffg.node_time[node]);
        }
        if trace.len() > max_lag {
            series.push(trace);
        }
    }
    if series.is_empty() {
        // Landscape sampled too sparsely for walks: report NaN rather than
        // a number computed from nothing.
        return vec![f64::NAN; max_lag];
    }

    // Pool lagged pairs across walks.
    (1..=max_lag)
        .map(|k| {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for t in &series {
                for i in 0..t.len() - k {
                    xs.push(t[i]);
                    ys.push(t[i + k]);
                }
            }
            pearson(&xs, &ys)
        })
        .collect()
}

/// Pearson correlation coefficient; 0.0 when either side is constant.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if x.is_empty() {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 1e-24 || syy <= 1e-24 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::Sample;
    use bat_space::Param;

    fn space_2d(k: i64) -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::int_range("x", 0, k - 1))
            .param(Param::int_range("y", 0, k - 1))
            .build()
            .unwrap()
    }

    fn landscape_from_fn(space: &ConfigSpace, f: impl Fn(&[i64]) -> f64) -> Landscape {
        let samples = (0..space.cardinality())
            .map(|index| Sample {
                index,
                time_ms: Some(f(&space.config_at(index))),
            })
            .collect();
        Landscape {
            problem: "test".into(),
            platform: "sim".into(),
            exhaustive: true,
            samples,
        }
    }

    #[test]
    fn smooth_bowl_is_easy_on_every_metric() {
        let space = space_2d(12);
        let l = landscape_from_fn(&space, |c| {
            1.0 + ((c[0] - 6) * (c[0] - 6) + (c[1] - 6) * (c[1] - 6)) as f64
        });
        // Adjacent (±1 step) walks measure smoothness; Hamming-any jumps
        // teleport across a parameter's whole range and decorrelate even
        // smooth landscapes.
        let r = difficulty(&space, &l, Neighborhood::Adjacent, 64, 200, 10, 0);
        // Fitness decreases toward the optimum: clearly positive FDC.
        // (Hamming distance saturates at 2 on a 2-D space, so the
        // correlation is diluted relative to a Euclidean metric.)
        assert!(r.fdc > 0.25, "FDC {}", r.fdc);
        // Smooth: high lag-1 autocorrelation, long correlation length.
        assert!(
            r.autocorrelation[0] > 0.7,
            "ρ(1) = {}",
            r.autocorrelation[0]
        );
        assert!(r.correlation_length > 2.0, "ℓ = {}", r.correlation_length);
        // A bowl has exactly one local minimum under adjacent moves.
        assert_eq!(r.n_local_minima, 1);
        assert!((r.minima_mean_quality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_landscape_is_rugged() {
        let space = space_2d(12);
        // Deterministic hash-noise: no structure at all.
        let l = landscape_from_fn(&space, |c| {
            let h = (c[0] as u64)
                .wrapping_mul(2654435761)
                .wrapping_add(c[1] as u64)
                .wrapping_mul(0x9e3779b97f4a7c15);
            1.0 + (h % 1000) as f64 / 100.0
        });
        let r = difficulty_default(&space, &l, 1);
        assert!(r.fdc.abs() < 0.3, "random landscape FDC {}", r.fdc);
        assert!(
            r.autocorrelation[0] < 0.5,
            "random ρ(1) = {}",
            r.autocorrelation[0]
        );
        assert!(r.n_local_minima > 3, "minima {}", r.n_local_minima);
    }

    #[test]
    fn smooth_is_easier_than_rugged() {
        let space = space_2d(10);
        let smooth = landscape_from_fn(&space, |c| 1.0 + (c[0] + c[1]) as f64);
        let rugged = landscape_from_fn(&space, |c| 1.0 + ((c[0] * 7 + c[1] * 13) % 11) as f64);
        let rs = difficulty_default(&space, &smooth, 2);
        let rr = difficulty_default(&space, &rugged, 2);
        assert!(rs.correlation_length > rr.correlation_length);
        assert!(rs.n_local_minima <= rr.n_local_minima);
    }

    #[test]
    fn deceptive_landscape_has_negative_fdc() {
        let space = space_2d(10);
        // A single needle at (9,9); everywhere else fitness *improves*
        // toward (0,0): distance to the optimum anti-correlates with time.
        let l = landscape_from_fn(&space, |c| {
            if c[0] == 9 && c[1] == 9 {
                0.1
            } else {
                2.0 + (c[0] + c[1]) as f64
            }
        });
        let r = difficulty_default(&space, &l, 3);
        assert!(
            r.fdc < 0.0,
            "deceptive FDC should be negative, got {}",
            r.fdc
        );
    }

    #[test]
    fn constant_landscape_degenerates_gracefully() {
        let space = space_2d(5);
        let l = landscape_from_fn(&space, |_| 3.0);
        let r = difficulty_default(&space, &l, 4);
        assert_eq!(r.fdc, 0.0);
        assert_eq!(r.autocorrelation[0], 0.0);
        assert_eq!(r.correlation_length, 0.0);
        // Every node is a minimum of quality 1.
        assert_eq!(r.n_local_minima, 25);
        assert!((r.minima_mean_quality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = space_2d(8);
        let l = landscape_from_fn(&space, |c| 1.0 + (c[0] * c[1]) as f64);
        let a = difficulty_default(&space, &l, 7);
        let b = difficulty_default(&space, &l, 7);
        assert_eq!(a.autocorrelation, b.autocorrelation);
        assert_eq!(a.fdc, b.fdc);
    }

    #[test]
    #[should_panic(expected = "walks must be longer")]
    fn short_walks_are_rejected() {
        let space = space_2d(4);
        let l = landscape_from_fn(&space, |c| c[0] as f64 + 1.0);
        difficulty(&space, &l, Neighborhood::HammingAny, 4, 5, 10, 0);
    }

    #[test]
    fn sparse_landscape_yields_nan_walk_metrics_but_valid_fdc() {
        // Two isolated samples in a big space: no sampled neighbours.
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 99))
            .param(Param::int_range("y", 0, 99))
            .build()
            .unwrap();
        let l = Landscape {
            problem: "sparse".into(),
            platform: "sim".into(),
            exhaustive: false,
            samples: vec![
                Sample {
                    index: 0,
                    time_ms: Some(1.0),
                },
                Sample {
                    index: 5_050,
                    time_ms: Some(2.0),
                },
            ],
        };
        let r = difficulty_default(&space, &l, 0);
        assert!(r.autocorrelation.iter().all(|v| v.is_nan()));
        assert!(r.correlation_length.is_nan());
        assert!(r.fdc.is_finite());
        // Isolated nodes have no improving edges: both count as minima.
        assert_eq!(r.n_local_minima, 2);
    }
}
