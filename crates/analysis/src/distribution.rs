//! Fig. 1: performance distribution of configurations, centred on the
//! median configuration.
//!
//! The paper plots, per benchmark and architecture, the density of
//! configurations by performance relative to the median configuration.
//! We report the same series: relative performance `median_time / time`
//! (1.0 = median, >1 = faster than median) histogrammed from the worst to
//! the best configuration, plus the summary shapes the text discusses
//! (exponential decay toward the best; Hotspot's detached fast cluster;
//! Nbody's slow cluster).

/// Histogram of relative-to-median performance.
#[derive(Debug, Clone)]
pub struct PerformanceDistribution {
    /// Bin edges (relative performance, ascending).
    pub edges: Vec<f64>,
    /// Configuration counts per bin.
    pub counts: Vec<u64>,
    /// Relative performance of the best configuration (= max speedup over
    /// median, the paper's Fig. 4 value).
    pub best_rel: f64,
    /// Relative performance of the worst configuration.
    pub worst_rel: f64,
    /// Fraction of configurations within ±10% of the median.
    pub central_mass: f64,
    /// Fraction of configurations at ≥ 80% of the best's relative
    /// performance (the "fast cluster" mass).
    pub fast_cluster_mass: f64,
}

impl PerformanceDistribution {
    /// Build from raw runtimes with `bins` histogram bins.
    pub fn from_times(times: &[f64], bins: usize) -> Option<PerformanceDistribution> {
        if times.is_empty() || bins == 0 {
            return None;
        }
        let mut sorted = times.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN time"));
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        };
        // Relative performance: median_time / time (higher = faster).
        let rel: Vec<f64> = sorted.iter().map(|t| median / t).collect();
        let best_rel = rel.iter().cloned().fold(f64::MIN, f64::max);
        let worst_rel = rel.iter().cloned().fold(f64::MAX, f64::min);
        let span = (best_rel - worst_rel).max(1e-12);
        let mut counts = vec![0u64; bins];
        for r in &rel {
            let b = (((r - worst_rel) / span) * bins as f64) as usize;
            counts[b.min(bins - 1)] += 1;
        }
        let edges: Vec<f64> = (0..=bins)
            .map(|i| worst_rel + span * i as f64 / bins as f64)
            .collect();
        let n = rel.len() as f64;
        let central_mass = rel.iter().filter(|r| (0.9..=1.1).contains(*r)).count() as f64 / n;
        let fast_threshold = worst_rel + 0.8 * span;
        let fast_cluster_mass = rel.iter().filter(|&&r| r >= fast_threshold).count() as f64 / n;
        Some(PerformanceDistribution {
            edges,
            counts,
            best_rel,
            worst_rel,
            central_mass,
            fast_cluster_mass,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_times_concentrate_at_median() {
        let times = vec![1.0; 100];
        let d = PerformanceDistribution::from_times(&times, 10).unwrap();
        assert_eq!(d.best_rel, 1.0);
        assert_eq!(d.worst_rel, 1.0);
        assert_eq!(d.central_mass, 1.0);
        assert_eq!(d.counts.iter().sum::<u64>(), 100);
    }

    #[test]
    fn fast_cluster_is_detected() {
        // 90 configs at 10ms, 10 configs at 1ms (10x cluster, Hotspot-like).
        let mut times = vec![10.0; 90];
        times.extend(vec![1.0; 10]);
        let d = PerformanceDistribution::from_times(&times, 20).unwrap();
        assert!((d.best_rel - 10.0).abs() < 1e-9);
        assert!((d.fast_cluster_mass - 0.1).abs() < 1e-9);
    }

    #[test]
    fn histogram_mass_is_total() {
        let times: Vec<f64> = (1..=500).map(|i| 1.0 + (i % 37) as f64).collect();
        let d = PerformanceDistribution::from_times(&times, 16).unwrap();
        assert_eq!(d.counts.iter().sum::<u64>(), 500);
        assert_eq!(d.edges.len(), 17);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(PerformanceDistribution::from_times(&[], 10).is_none());
        assert!(PerformanceDistribution::from_times(&[1.0], 0).is_none());
    }

    #[test]
    fn relative_performance_orientation() {
        // One config twice as fast as the median must give best_rel ≈ 2.
        let times = vec![2.0, 2.0, 2.0, 2.0, 1.0];
        let d = PerformanceDistribution::from_times(&times, 4).unwrap();
        assert!((d.best_rel - 2.0).abs() < 1e-9);
        assert!((d.worst_rel - 1.0).abs() < 1e-9);
    }
}
