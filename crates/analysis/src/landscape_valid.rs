//! Valid-space sampling variant of the landscape protocol.
//!
//! Tuning frameworks sample the *constrained* space (restriction-violating
//! configurations never reach the device). This module adds the
//! corresponding landscape constructor: `n` distinct configurations drawn
//! uniformly from the restriction-valid space; architecture-dependent
//! launch failures still appear as failed samples. Evaluation uses the
//! same chunked, scratch-reusing streaming path as [`Landscape::sampled`].

use bat_core::TuningProblem;
use bat_space::sample_valid_indices_distinct;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::landscape::{evaluate_sparse, Landscape};

/// Evaluate `n` distinct restriction-valid configurations.
///
/// Returns `None` when rejection sampling cannot find `n` valid
/// configurations within `max_tries` draws.
pub fn sampled_valid(
    problem: &dyn TuningProblem,
    n: usize,
    seed: u64,
    max_tries: usize,
) -> Option<Landscape> {
    let space = problem.space();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices = sample_valid_indices_distinct(space, n, &mut rng, max_tries)?;
    indices.sort_unstable();
    Some(Landscape {
        problem: problem.name().to_string(),
        platform: problem.platform().to_string(),
        exhaustive: false,
        samples: evaluate_sparse(problem, &indices),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};

    #[test]
    fn samples_are_restriction_valid() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 99))
            .param(Param::int_range("y", 0, 9))
            .restrict("x % 10 == y")
            .build()
            .unwrap();
        let p = SyntheticProblem::new("toy", "sim", space, |c| Ok(1.0 + c[0] as f64));
        let l = sampled_valid(&p, 50, 3, 1_000_000).unwrap();
        assert_eq!(l.samples.len(), 50);
        // Every sample valid -> every sample succeeded.
        assert_eq!(l.valid_count(), 50);
    }

    #[test]
    fn infeasible_spaces_return_none() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .restrict("x > 100")
            .build()
            .unwrap();
        let p = SyntheticProblem::new("toy", "sim", space, |c| Ok(1.0 + c[0] as f64));
        assert!(sampled_valid(&p, 5, 3, 10_000).is_none());
    }
}
