//! Fig. 5: performance portability of optimal configurations.
//!
//! Take the optimal configuration found for architecture *A* (row) and run
//! it on architecture *B* (column); report its runtime relative to *B*'s
//! own optimum. The paper reads the matrix row-wise: "the optimal
//! configuration for the GPU labeled in each row, transferred to the GPUs
//! labeled on the columns" — with values from 58.5% (poor transfer) to
//! 99.9% (same-family transfer).

use bat_core::TuningProblem;

use crate::landscape::Landscape;

/// A portability matrix over a set of platforms.
#[derive(Debug, Clone)]
pub struct PortabilityMatrix {
    /// Platform labels, row/column order.
    pub platforms: Vec<String>,
    /// `value[row][col]` = performance of row-optimal config on col, as a
    /// fraction of col's optimum (1.0 = perfectly portable). `None` when
    /// the configuration cannot run on the column architecture.
    pub values: Vec<Vec<Option<f64>>>,
}

impl PortabilityMatrix {
    /// Smallest off-diagonal portability (the paper's 58.5% style figure).
    pub fn worst_transfer(&self) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for (r, row) in self.values.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if r != c {
                    if let Some(x) = v {
                        worst = Some(worst.map_or(*x, |w: f64| w.min(*x)));
                    }
                }
            }
        }
        worst
    }

    /// Largest off-diagonal portability.
    pub fn best_transfer(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (r, row) in self.values.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if r != c {
                    if let Some(x) = v {
                        best = Some(best.map_or(*x, |w: f64| w.max(*x)));
                    }
                }
            }
        }
        best
    }
}

/// Compute the portability matrix for one benchmark.
///
/// `problems[i]` is the benchmark bound to platform `i`; `landscapes[i]`
/// the matching landscape (exhaustive or sampled) used to find platform
/// `i`'s optimal configuration.
pub fn portability_matrix(
    problems: &[&dyn TuningProblem],
    landscapes: &[Landscape],
) -> PortabilityMatrix {
    assert_eq!(problems.len(), landscapes.len());
    let n = problems.len();
    let platforms: Vec<String> = problems.iter().map(|p| p.platform().to_string()).collect();

    // Optimal configuration per platform.
    let best_cfgs: Vec<Vec<i64>> = landscapes
        .iter()
        .zip(problems)
        .map(|(l, p)| {
            let best = l.best().expect("landscape has a valid optimum");
            p.space().config_at(best.index)
        })
        .collect();
    let best_times: Vec<f64> = landscapes
        .iter()
        .map(|l| l.best().expect("valid optimum").time_ms.expect("valid"))
        .collect();

    let values: Vec<Vec<Option<f64>>> = (0..n)
        .map(|row| {
            (0..n)
                .map(|col| {
                    let t = problems[col].evaluate_pure(&best_cfgs[row]).ok()?;
                    Some(best_times[col] / t)
                })
                .collect()
        })
        .collect();

    PortabilityMatrix { platforms, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap()
    }

    type Synth =
        SyntheticProblem<Box<dyn Fn(&[i64]) -> Result<f64, bat_core::EvalFailure> + Send + Sync>>;

    fn platform_problem(name: &str, optimum: i64) -> Synth {
        SyntheticProblem::new(
            "bench",
            name,
            space(),
            Box::new(move |c: &[i64]| Ok(1.0 + (c[0] - optimum).unsigned_abs() as f64)),
        )
    }

    #[test]
    fn identical_platforms_are_fully_portable() {
        let a = platform_problem("A", 4);
        let b = platform_problem("B", 4);
        let la = Landscape::exhaustive(&a);
        let lb = Landscape::exhaustive(&b);
        let m = portability_matrix(&[&a, &b], &[la, lb]);
        for row in &m.values {
            for v in row {
                assert!((v.unwrap() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shifted_optima_reduce_transfer() {
        let a = platform_problem("A", 1);
        let b = platform_problem("B", 8);
        let la = Landscape::exhaustive(&a);
        let lb = Landscape::exhaustive(&b);
        let m = portability_matrix(&[&a, &b], &[la, lb]);
        // Diagonal is 1.0.
        assert!((m.values[0][0].unwrap() - 1.0).abs() < 1e-12);
        assert!((m.values[1][1].unwrap() - 1.0).abs() < 1e-12);
        // A's optimum (x=1) on B: time 1+7=8, B's optimum 1 -> 0.125.
        assert!((m.values[0][1].unwrap() - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(m.worst_transfer(), m.best_transfer()); // symmetric here
    }

    #[test]
    fn launch_failures_show_as_none() {
        let a = platform_problem("A", 9);
        let b = SyntheticProblem::new(
            "bench",
            "B",
            space(),
            Box::new(|c: &[i64]| {
                if c[0] > 5 {
                    Err(bat_core::EvalFailure::Launch("too big".into()))
                } else {
                    Ok(1.0 + c[0] as f64)
                }
            }) as Box<dyn Fn(&[i64]) -> _ + Send + Sync>,
        );
        let la = Landscape::exhaustive(&a);
        let lb = Landscape::exhaustive(&b);
        let m = portability_matrix(&[&a, &b], &[la, lb]);
        // A's optimum x=9 cannot launch on B.
        assert_eq!(m.values[0][1], None);
        // B's optimum x=0 runs on A.
        assert!(m.values[1][0].is_some());
    }
}
