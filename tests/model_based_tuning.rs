//! Integration tests for the model-based tuner family (GP-BO, TPE,
//! SMAC-forest), the tuner-comparison harness and the dynamic-autotuning
//! simulation — all on real suite benchmarks through the public API.

use bat::prelude::*;
use bat::tuners::default_tuners;

#[test]
fn model_based_tuners_run_on_real_kernels_within_budget() {
    let arch = GpuArch::rtx_3060();
    for name in ["gemm", "convolution", "hotspot"] {
        let problem = bat::kernels::benchmark(name, arch.clone()).unwrap();
        for tuner in [
            Box::new(BayesianOptimization::default()) as Box<dyn Tuner>,
            Box::new(Tpe::default()),
            Box::new(SmacTuner::default()),
        ] {
            let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(50);
            let run = tuner.tune(&evaluator, 3);
            assert_eq!(run.trials.len(), 50, "{name}/{}", tuner.name());
            assert!(
                run.successes() > 0,
                "{name}/{}: no valid measurement in 50 evaluations",
                tuner.name()
            );
            let best = run.best().unwrap();
            assert!(problem.space().is_valid(&best.config));
        }
    }
}

#[test]
fn bayesian_optimization_outranks_random_on_gemm() {
    // GEMM is the benchmark the paper's Fig. 2 shows needing hundreds of
    // random evaluations; the GP surrogate should exploit its
    // multiplicative structure.
    let problem = bat::kernels::benchmark("gemm", GpuArch::rtx_2080_ti()).unwrap();
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(BayesianOptimization::default()),
        Box::new(RandomSearch),
    ];
    let comparison = compare_tuners(
        &problem,
        &tuners,
        &ComparisonSettings {
            budget: 120,
            repeats: 5,
            ..ComparisonSettings::default()
        },
        None,
    );
    let rank = |name: &str| {
        comparison
            .results
            .iter()
            .find(|r| r.tuner == name)
            .unwrap()
            .mean_rank
    };
    assert!(
        rank("gp-bo-ei") < rank("random-search"),
        "gp-bo-ei rank {} vs random {}",
        rank("gp-bo-ei"),
        rank("random-search")
    );
}

#[test]
fn tpe_restriction_filtering_pays_off_on_gemm() {
    // 78% of GEMM's cartesian space violates the CLBlast restrictions;
    // static filtering (what Optuna/Kernel Tuner actually do) must not
    // be worse than thrashing through restricted draws.
    let problem = bat::kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
    // 15 seeds: the 5-seed median is noisy enough to flip on an unlucky
    // RNG stream even though filtering genuinely helps.
    let median_best = |tuner: &Tpe| -> f64 {
        let mut bests: Vec<f64> = (0..15)
            .map(|seed| {
                let eval = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(80);
                tuner
                    .tune(&eval, seed)
                    .best()
                    .map_or(f64::INFINITY, |b| b.time_ms().unwrap())
            })
            .collect();
        bests.sort_by(|a, b| a.total_cmp(b));
        bests[bests.len() / 2]
    };
    let filtered = median_best(&Tpe::default());
    let unfiltered = median_best(&Tpe {
        respect_restrictions: false,
        ..Tpe::default()
    });
    assert!(
        filtered <= unfiltered,
        "filtered median {filtered} should not exceed unfiltered {unfiltered}"
    );
}

#[test]
fn comparison_harness_covers_the_default_tuner_set() {
    let problem = bat::kernels::benchmark("pnpoly", GpuArch::rtx_titan()).unwrap();
    let tuners = default_tuners();
    let comparison = compare_tuners(
        &problem,
        &tuners,
        &ComparisonSettings {
            budget: 40,
            repeats: 3,
            ..ComparisonSettings::default()
        },
        None,
    );
    assert_eq!(comparison.results.len(), tuners.len());
    assert_eq!(comparison.problem, "pnpoly");
    // Ranks partition [1, n] on average.
    let n = tuners.len() as f64;
    let total: f64 = comparison.results.iter().map(|r| r.mean_rank).sum();
    assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
    // Every tuner produced a finite result on this restriction-free space.
    for r in &comparison.results {
        assert!(r.median_final().is_some(), "{} never succeeded", r.tuner);
    }
}

#[test]
fn cross_benchmark_rank_aggregation_is_consistent() {
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomSearch),
        Box::new(LocalSearch::default()),
        Box::new(Tpe::default()),
    ];
    let settings = ComparisonSettings {
        budget: 40,
        repeats: 3,
        ..ComparisonSettings::default()
    };
    let comparisons: Vec<_> = ["pnpoly", "nbody"]
        .iter()
        .map(|name| {
            let p = bat::kernels::benchmark(name, GpuArch::rtx_3060()).unwrap();
            compare_tuners(&p, &tuners, &settings, None)
        })
        .collect();
    let agg = aggregate_ranks(&comparisons);
    assert_eq!(agg.tuners.len(), 3);
    assert_eq!(agg.per_problem.len(), 2);
    // Mean of means, and best-first ordering.
    for w in agg.mean_ranks.windows(2) {
        assert!(w[0] <= w[1]);
    }
    let grand: f64 = agg.mean_ranks.iter().sum();
    assert!((grand - 6.0).abs() < 1e-9, "ranks must sum to n(n+1)/2 = 6");
}

#[test]
fn online_tuning_amortizes_on_a_real_kernel() {
    let problem = bat::kernels::benchmark("convolution", GpuArch::rtx_3090()).unwrap();
    let sim = OnlineSimulation {
        invocations: 5_000,
        policy: OnlinePolicy::TuneThenExploit { tuning_budget: 150 },
        protocol: Protocol::default(),
    };
    let trace = sim.run(&problem, &IteratedLocalSearch::default(), None, None, 0);
    assert_eq!(trace.costs.len(), 5_000);
    assert!(
        trace.speedup_over_static() > 1.0,
        "tuning should amortize over 5000 invocations (speedup {})",
        trace.speedup_over_static()
    );
    assert!(trace.break_even().is_some());
    // The exploited configuration is valid and at least as fast as the
    // untuned default.
    assert!(trace.tuned_ms <= trace.default_ms);
    let cfg = problem.space().config_at(trace.tuned_index);
    assert!(problem.space().is_valid(&cfg));
}

#[test]
fn online_static_and_oracle_bracket_tune_then_exploit() {
    let problem = bat::kernels::benchmark("nbody", GpuArch::rtx_2080_ti()).unwrap();
    let landscape = Landscape::exhaustive(&problem);
    let t_opt = landscape.best().unwrap().time_ms.unwrap();
    let sim = OnlineSimulation {
        invocations: 3_000,
        policy: OnlinePolicy::TuneThenExploit { tuning_budget: 200 },
        protocol: Protocol::default(),
    };
    let trace = sim.run(&problem, &RandomSearch, None, Some(t_opt), 1);
    let oracle = trace.oracle_ms.unwrap();
    assert!(
        oracle <= trace.total_ms * (1.0 + 1e-9),
        "oracle {oracle} must lower-bound online {}",
        trace.total_ms
    );
    assert!(
        trace.total_ms <= trace.static_ms * (1.0 + 1e-9),
        "online {} must not lose to static {} here (slow default)",
        trace.total_ms,
        trace.static_ms
    );
}

#[test]
fn gp_surrogate_fits_kernel_landscapes_accurately() {
    // The GP should reach a decent fit on a real (sub-sampled) landscape —
    // the property that makes BO informative at all.
    let problem = bat::kernels::benchmark("nbody", GpuArch::rtx_titan()).unwrap();
    let space = problem.space();
    let landscape = Landscape::exhaustive(&problem);
    let pts: Vec<(&u64, f64)> = landscape
        .samples
        .iter()
        .filter_map(|s| s.time_ms.map(|t| (&s.index, t)))
        .step_by(17)
        .take(120)
        .collect();
    let rows: Vec<Vec<f64>> = pts
        .iter()
        .map(|(i, _)| space.config_at(**i).iter().map(|&v| v as f64).collect())
        .collect();
    let ys: Vec<f64> = pts.iter().map(|(_, t)| t.ln()).collect();
    let gp = bat::ml::GaussianProcess::fit(&rows, &ys, &bat::ml::GpParams::default());
    // In-sample R² of the posterior mean.
    let preds: Vec<f64> = rows.iter().map(|r| gp.predict(r).mean).collect();
    let r2 = bat::ml::r2_score(&ys, &preds);
    assert!(r2 > 0.8, "GP in-sample R² = {r2}");
}
