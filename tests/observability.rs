//! Observability contract tests: telemetry is strictly out-of-band.
//!
//! The invariants under test:
//!
//! * campaign artifacts are **byte-identical** with span tracing on, off,
//!   or (in the CI `no-obs` leg) compiled out entirely;
//! * the emitted trace is well-formed `bat/trace/v1` JSONL covering the
//!   campaign → trial → step → batch hierarchy;
//! * the metrics registry's evaluation/resilience counters agree exactly
//!   with the artifact's own per-trial tallies — one source of truth.
//!
//! Trace sink and metrics registry are process-wide, so every test that
//! runs campaigns serializes on one lock and reads counters as deltas.

use std::sync::{Mutex, OnceLock};

use bat::harness::FaultSpec;
use bat::prelude::*;
use proptest::prelude::*;

/// Campaign-running tests share the process-wide registry and trace sink;
/// this lock keeps their counter deltas and trace windows exact.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Install the process-wide trace sink once (into a per-process temp
/// file), leaving emission **disabled**; tests enable it around the
/// windows they inspect. Returns the sink path.
fn trace_sink() -> &'static std::path::Path {
    static PATH: OnceLock<std::path::PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("bat-obs-test-{}.jsonl", std::process::id()));
        bat::obs::trace::install(&path).expect("install trace sink");
        bat::obs::trace::disable();
        path
    })
}

fn tiny_spec(seed: u64, budget: u64) -> ExperimentSpec {
    ExperimentSpec {
        tuners: Selector::Subset(vec!["random-search".into(), "greedy-ils".into()]),
        benchmarks: Selector::Subset(vec!["nbody".into()]),
        architectures: Selector::Subset(vec!["RTX 3060".into()]),
        budget,
        repetitions: 2,
        seed,
        ..ExperimentSpec::new("obs-contract")
    }
}

fn artifact_json(spec: &ExperimentSpec) -> String {
    run_campaign(spec).expect("campaign").result.to_json()
}

#[test]
fn artifact_bytes_identical_with_tracing_on_and_off() {
    let _guard = obs_lock().lock().unwrap();
    let path = trace_sink();
    let spec = tiny_spec(2024, 25);

    let plain = artifact_json(&spec);
    bat::obs::trace::enable();
    let traced = artifact_json(&spec);
    bat::obs::trace::disable();
    bat::obs::trace::flush();

    assert_eq!(plain, traced, "tracing must never touch the artifact");
    // The trace itself is wall-clock-dependent, but it must exist and
    // carry spans for the window we just traced.
    let body = std::fs::read_to_string(path).unwrap();
    assert!(body.lines().count() > 1, "trace window emitted no spans");
}

#[test]
fn trace_lines_parse_and_cover_the_span_hierarchy() {
    let _guard = obs_lock().lock().unwrap();
    let path = trace_sink();
    let spec = tiny_spec(7, 30);

    bat::obs::trace::enable();
    let _ = artifact_json(&spec);
    bat::obs::trace::disable();
    bat::obs::trace::flush();

    let as_u64 = |v: &serde_json::Value| match v {
        serde_json::Value::UInt(u) => Some(*u),
        serde_json::Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    };
    let body = std::fs::read_to_string(path).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut metas = 0usize;
    for line in body.lines() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e:?}"));
        assert_eq!(
            v.get("v").and_then(|s| s.as_str()),
            Some("bat/trace/v1"),
            "every line is schema-versioned"
        );
        if let Some(kind) = v.get("span").and_then(|s| s.as_str()) {
            assert!(v.get("id").and_then(&as_u64).is_some_and(|id| id > 0));
            assert!(v.get("t_us").and_then(&as_u64).is_some());
            assert!(v.get("dur_us").and_then(&as_u64).is_some());
            kinds.insert(kind.to_string());
        } else {
            metas += 1;
            assert!(
                v.get("meta")
                    .and_then(|m| m.get("epoch_unix_ms"))
                    .and_then(&as_u64)
                    .is_some(),
                "meta line: {line}"
            );
        }
    }
    assert_eq!(metas, 1, "exactly one meta line per sink");
    for want in ["campaign", "trial", "step", "batch"] {
        assert!(kinds.contains(want), "missing {want} spans; got {kinds:?}");
    }
}

#[cfg(not(feature = "no-obs"))]
#[test]
fn eval_and_resilience_counters_match_the_artifact_exactly() {
    use bat::obs::metrics::counter_value;
    let _guard = obs_lock().lock().unwrap();
    let before = |name: &str| counter_value(name).unwrap_or(0);

    // A fault-injected campaign so retries and quarantines are non-zero.
    let spec = ExperimentSpec {
        faults: Some(FaultSpec {
            transient_rate: 0.2,
            timeout_rate: 0.05,
            crash_rate: 0.05,
            ..FaultSpec::default()
        }),
        ..tiny_spec(1337, 30)
    };
    let evals0 = before("bat_eval_evals_total");
    let retries0 =
        before("bat_eval_retries_transient_total") + before("bat_eval_retries_timeout_total");
    let quarantined0 = before("bat_eval_quarantined_total");

    let run = run_campaign(&spec).expect("campaign");

    let evals: u64 = run.result.trials.iter().map(|t| t.evals).sum();
    let retries: u64 = run.result.trials.iter().map(|t| t.retries).sum();
    let quarantined: u64 = run.result.trials.iter().map(|t| t.quarantined).sum();
    assert!(retries > 0, "chaos spec charged no retries");

    assert_eq!(
        before("bat_eval_evals_total") - evals0,
        evals,
        "registry evals disagree with the artifact's own tally"
    );
    assert_eq!(
        before("bat_eval_retries_transient_total") + before("bat_eval_retries_timeout_total")
            - retries0,
        retries,
        "registry retries disagree with the artifact's own tally"
    );
    assert_eq!(
        before("bat_eval_quarantined_total") - quarantined0,
        quarantined,
        "registry quarantines disagree with the artifact's own tally"
    );
}

#[test]
fn committed_smoke_specs_are_trace_invariant() {
    let _guard = obs_lock().lock().unwrap();
    let _ = trace_sink();
    for name in ["ci-smoke", "pareto-smoke", "chaos-smoke"] {
        let spec = bat::harness::load_spec_file(&format!("specs/{name}.json"))
            .unwrap_or_else(|e| panic!("load {name}: {e}"));
        let plain = artifact_json(&spec);
        bat::obs::trace::enable();
        let traced = artifact_json(&spec);
        bat::obs::trace::disable();
        assert_eq!(plain, traced, "{name} artifact moved under --trace");
    }
}

proptest! {
    /// Tracing stays out-of-band for arbitrary small campaigns, not just
    /// the committed smoke specs.
    #[test]
    fn tracing_never_perturbs_artifacts(seed in 0u64..1000, budget in 10u64..40) {
        let _guard = obs_lock().lock().unwrap();
        let _ = trace_sink();
        let spec = tiny_spec(seed, budget);
        let plain = artifact_json(&spec);
        bat::obs::trace::enable();
        let traced = artifact_json(&spec);
        bat::obs::trace::disable();
        prop_assert_eq!(plain, traced);
    }
}
