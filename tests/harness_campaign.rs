//! Harness contract tests: spec/result serde stability (versioned schema,
//! unknown-field rejection) and campaign determinism (parallel ≡ serial,
//! resume-from-truncated ≡ full run) — property-tested over random specs.

use bat::harness::{FaultSpec, RecordLevel, SPEC_SCHEMA};
use bat::prelude::*;
use proptest::prelude::*;

fn tiny_spec() -> ExperimentSpec {
    ExperimentSpec {
        tuners: Selector::Subset(vec!["random-search".into(), "greedy-ils".into()]),
        benchmarks: Selector::Subset(vec!["nbody".into()]),
        architectures: Selector::Subset(vec!["RTX 3060".into()]),
        budget: 15,
        repetitions: 2,
        ..ExperimentSpec::new("contract")
    }
}

#[test]
fn spec_json_round_trip_is_lossless() {
    let spec = tiny_spec();
    let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(back, spec);
    // All-selector and non-default knobs survive too.
    let fancy = ExperimentSpec {
        tuners: Selector::All,
        seed: 99,
        seed_policy: SeedPolicy::Sequential,
        record: RecordLevel::Curve,
        ..tiny_spec()
    };
    let back = ExperimentSpec::from_json(&fancy.to_json()).unwrap();
    assert_eq!(back, fancy);
}

#[test]
fn spec_rejects_unknown_fields_and_wrong_schema() {
    let json = tiny_spec().to_json();
    // Smuggle an unknown top-level field in.
    let tampered = json.replacen("\"name\"", "\"surprise\": 1,\n  \"name\"", 1);
    assert!(
        ExperimentSpec::from_json(&tampered).is_err(),
        "unknown top-level field must be rejected"
    );
    // Unknown field inside the protocol block.
    let tampered = json.replacen("\"runs\"", "\"warmup\": 2, \"runs\"", 1);
    assert!(
        ExperimentSpec::from_json(&tampered).is_err(),
        "unknown protocol field must be rejected"
    );
    // A future schema version parses but refuses to run.
    let future = json.replace(SPEC_SCHEMA, "bat/campaign-spec/v2");
    let spec = ExperimentSpec::from_json(&future).unwrap();
    assert!(spec.validate().is_err(), "wrong schema must not validate");
    // Missing schema field fails at parse time (it is not defaulted).
    let missing = json.replacen("\"schema\"", "\"schema_was\"", 1);
    assert!(ExperimentSpec::from_json(&missing).is_err());
}

#[test]
fn result_json_round_trip_is_lossless_and_versioned() {
    let run = run_campaign(&tiny_spec()).unwrap();
    let json = run.result.to_json();
    assert!(json.contains("bat/campaign-result/v1"));
    let back = CampaignResult::from_json(&json).unwrap();
    assert_eq!(back, run.result);
    // Unknown fields in an artifact are rejected, so CI diffs cannot
    // silently ignore drift.
    let tampered = json.replacen("\"trials\"", "\"wall_ms\": 1.0, \"trials\"", 1);
    assert!(CampaignResult::from_json(&tampered).is_err());
    // Trial-record level too.
    let tampered = json.replacen("\"tuner\"", "\"host\": \"ci\", \"tuner\"", 1);
    assert!(CampaignResult::from_json(&tampered).is_err());
}

#[test]
fn artifacts_contain_no_volatile_data() {
    // Wall time, throughput and host facts live on CampaignRun only; the
    // serialized artifact must stay a pure function of the spec.
    let json = run_campaign(&tiny_spec()).unwrap().result.to_json();
    for forbidden in ["wall", "time_stamp", "timestamp", "duration", "host"] {
        assert!(
            !json.contains(&format!("\"{forbidden}")),
            "artifact leaks volatile field {forbidden:?}"
        );
    }
}

proptest! {
    #[test]
    fn parallel_serial_and_resumed_runs_are_byte_identical(
        (budget, seed, reps, policy, cut) in (
            5u64..25,
            0u64..1000,
            1u32..3,
            0u8..2,
            0usize..6,
        )
    ) {
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec![
                "random-search".into(),
                "simulated-annealing".into(),
            ]),
            benchmarks: Selector::Subset(vec!["nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 2080 Ti".into()]),
            budget,
            repetitions: reps,
            seed,
            seed_policy: if policy == 0 {
                SeedPolicy::Derived
            } else {
                SeedPolicy::Sequential
            },
            record: RecordLevel::Curve,
            ..ExperimentSpec::new("prop")
        };
        let parallel = run_campaign(&spec).unwrap();
        let serial = run_campaign_serial(&spec).unwrap();
        let json = parallel.result.to_json();
        prop_assert_eq!(&json, &serial.result.to_json());

        // Resuming from any truncation of the artifact reproduces it.
        let mut partial = parallel.result.clone();
        let keep = cut.min(partial.trials.len());
        partial.trials.truncate(keep);
        let resumed = resume_campaign(&spec, &partial).unwrap();
        prop_assert_eq!(resumed.reused, keep);
        prop_assert_eq!(&resumed.result.to_json(), &json);
    }

    /// The PR-3/5 determinism contract survives fault injection: a chaos
    /// campaign is byte-identical across the parallel pool, the serial
    /// oracle, and resume from any truncation — retry chains, quarantine
    /// and all — because fault draws are counter-based, never stateful.
    #[test]
    fn fault_injected_campaigns_are_byte_identical(
        (budget, seed, cut, transient, crash) in (
            8u64..25,
            0u64..1000,
            0usize..6,
            1u32..5,
            0u32..3,
        )
    ) {
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec![
                "random-search".into(),
                "greedy-ils".into(),
            ]),
            benchmarks: Selector::Subset(vec!["nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 2080 Ti".into()]),
            budget,
            repetitions: 2,
            seed,
            record: RecordLevel::Curve,
            faults: Some(FaultSpec {
                transient_rate: f64::from(transient) * 0.05,
                timeout_rate: 0.02,
                outlier_rate: 0.03,
                crash_rate: f64::from(crash) * 0.04,
                quarantine_after: Some(2),
                ..Default::default()
            }),
            ..ExperimentSpec::new("chaos-prop")
        };
        let parallel = run_campaign(&spec).unwrap();
        let serial = run_campaign_serial(&spec).unwrap();
        let json = parallel.result.to_json();
        prop_assert_eq!(&json, &serial.result.to_json());

        let mut partial = parallel.result.clone();
        let keep = cut.min(partial.trials.len());
        partial.trials.truncate(keep);
        let resumed = resume_campaign(&spec, &partial).unwrap();
        prop_assert_eq!(resumed.reused, keep);
        prop_assert_eq!(&resumed.result.to_json(), &json);
    }
}

/// A zero-rate fault block canonicalizes to *absent* (`set_fault_rate(0)`
/// on a spec without other fault knobs), and its artifact is byte-identical
/// to the fault-free campaign's — the "off by default, byte-identical when
/// disabled" guarantee, checked at the artifact level.
#[test]
fn zero_fault_rate_artifact_matches_the_fault_free_one() {
    let baseline = tiny_spec();
    let mut zeroed = tiny_spec();
    zeroed.set_fault_rate(0.0);
    assert_eq!(
        zeroed, baseline,
        "zero-rate fault block must canonicalize away"
    );
    assert_eq!(
        run_campaign(&zeroed).unwrap().result.to_json(),
        run_campaign(&baseline).unwrap().result.to_json()
    );

    // An explicitly present all-zero block must also change nothing but
    // the embedded spec: trial records stay identical.
    let mut explicit = tiny_spec();
    explicit.faults = Some(FaultSpec {
        quarantine_after: Some(3),
        ..Default::default()
    });
    let with_block = run_campaign(&explicit).unwrap();
    let without = run_campaign(&baseline).unwrap();
    assert_eq!(with_block.result.trials, without.result.trials);
}
