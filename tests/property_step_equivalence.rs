//! Property tests for the ask/tell refactor's two central equivalences:
//!
//! 1. the shared step driver at `batch = 1` reproduces every tuner's
//!    retained pre-refactor pull loop (`reference_tune`) bit-exactly —
//!    same trials, same indices, same measurements, same budget spend —
//!    on random spaces, random seeds and random budgets;
//! 2. `Evaluator::evaluate_batch` is semantically identical to the same
//!    sequence of serial `evaluate_index` calls at any batch size: same
//!    results, same budget accounting, same memo/distinct state.

use bat::prelude::*;
use proptest::prelude::*;

/// A random space of 2–4 parameters with 2–7 values each, optionally
/// carrying a restriction so some evaluations fail.
fn arb_space() -> impl proptest::Strategy<Value = ConfigSpace> {
    (proptest::collection::vec(2usize..7, 2..4), 0u32..2).prop_map(|(radices, restricted)| {
        let restricted = restricted == 1;
        let mut b = ConfigSpace::builder();
        for (i, r) in radices.iter().enumerate() {
            let values: Vec<i64> = (0..*r as i64).map(|v| v + 1).collect();
            b = b.param(Param::new(format!("p{i}"), values));
        }
        if restricted {
            // Cuts a corner of the space without emptying it
            // (minimum possible sum is #params).
            b = b.restrict(&format!("p0 + p1 <= {}", radices[0] + radices[1] - 1));
        }
        b.build().unwrap()
    })
}

fn problem(
    space: ConfigSpace,
) -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync> {
    SyntheticProblem::new("step-prop", "sim", space, |c| {
        let mut t = 1.0;
        for (i, &v) in c.iter().enumerate() {
            t += ((v - 2 * (i as i64 % 3)) * (v - 2)) as f64 * 0.25 + v as f64 * 0.1;
        }
        Ok(t.abs() + 0.5)
    })
}

use bat::core::SyntheticProblem;

fn protocol(noisy: bool) -> Protocol {
    if noisy {
        Protocol {
            runs: 3,
            sigma: 0.05,
            seed: 7,
            ..Protocol::default()
        }
    } else {
        Protocol::noiseless()
    }
}

/// Compare the driver (batch = 1) against a tuner's reference loop on a
/// fresh evaluator pair.
fn assert_driver_matches<T, F>(
    tuner: &T,
    reference: F,
    space: &ConfigSpace,
    seed: u64,
    budget: u64,
    noisy: bool,
) where
    T: Tuner,
    F: Fn(&T, &Evaluator<'_>, u64) -> TuningRun,
{
    let p = problem(space.clone());
    let e1 = Evaluator::with_protocol(&p, protocol(noisy)).with_budget(budget);
    let e2 = Evaluator::with_protocol(&p, protocol(noisy)).with_budget(budget);
    let driven = tuner.tune(&e1, seed);
    let referenced = reference(tuner, &e2, seed);
    assert_eq!(driven, referenced, "{} diverged", tuner.name());
    assert_eq!(e1.evals_used(), e2.evals_used(), "{} budget", tuner.name());
    assert_eq!(
        e1.distinct_evals(),
        e2.distinct_evals(),
        "{} distinct",
        tuner.name()
    );
}

proptest! {
    /// Driver ≡ reference for the non-model tuners (cheap enough to sweep
    /// every one per case).
    #[test]
    fn driver_matches_reference_for_search_tuners(
        space in arb_space(),
        seed in 0u64..1_000,
        budget in 20u64..90,
        noisy in 0u32..2,
    ) {
        let noisy = noisy == 1;
        assert_driver_matches(&RandomSearch, RandomSearch::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&bat::tuners::ExhaustiveSearch, bat::tuners::ExhaustiveSearch::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&LocalSearch::default(), LocalSearch::reference_tune, &space, seed, budget, noisy);
        let best = LocalSearch { strategy: bat::tuners::Strategy::BestImprovement, ..LocalSearch::default() };
        assert_driver_matches(&best, LocalSearch::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&IteratedLocalSearch::default(), IteratedLocalSearch::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&SimulatedAnnealing::default(), SimulatedAnnealing::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&BasinHopping::default(), BasinHopping::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&GeneticAlgorithm::default(), GeneticAlgorithm::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&ParticleSwarm::default(), ParticleSwarm::reference_tune, &space, seed, budget, noisy);
        assert_driver_matches(&DifferentialEvolution::default(), DifferentialEvolution::reference_tune, &space, seed, budget, noisy);
        // Warm start wraps the step protocol of its inner tuner.
        let seeds = vec![space.config_at(0), vec![999; space.num_params()], space.config_at(space.cardinality() - 1)];
        let warm = WarmStartTuner::new(seeds, RandomSearch);
        assert_driver_matches(&warm, WarmStartTuner::reference_tune, &space, seed, budget, noisy);
    }

    /// Driver ≡ reference for the model-based tuners (fewer, heavier
    /// cases: each one fits GBDTs/GPs/forests along the run).
    #[test]
    fn driver_matches_reference_for_model_tuners(
        space in arb_space(),
        seed in 0u64..100,
        budget in 24u64..40,
    ) {
        assert_driver_matches(&SurrogateTuner::default(), SurrogateTuner::reference_tune, &space, seed, budget, false);
        assert_driver_matches(&BayesianOptimization::default(), BayesianOptimization::reference_tune, &space, seed, budget, false);
        assert_driver_matches(&Tpe::default(), Tpe::reference_tune, &space, seed, budget, false);
        assert_driver_matches(&SmacTuner::default(), SmacTuner::reference_tune, &space, seed, budget, false);
    }

    /// Driver ≡ reference for NSGA-II under the energy objective.
    #[test]
    fn driver_matches_reference_for_nsga2(
        space in arb_space(),
        seed in 0u64..1_000,
        budget in 20u64..120,
        noisy in 0u32..2,
    ) {
        let noisy = noisy == 1;
        let p = problem(space.clone());
        let tuner = Nsga2::default();
        let e1 = Evaluator::with_protocol(&p, protocol(noisy)).with_energy().with_budget(budget);
        let e2 = Evaluator::with_protocol(&p, protocol(noisy)).with_energy().with_budget(budget);
        prop_assert_eq!(tuner.tune(&e1, seed), tuner.reference_tune(&e2, seed));
    }

    /// `evaluate_batch` ≡ serial `evaluate_index` in results, budget
    /// accounting and memo state, for any batch partition of any index
    /// sequence (duplicates included), with and without a budget.
    #[test]
    fn evaluate_batch_equals_serial(
        space in arb_space(),
        picks in proptest::collection::vec(0u64..10_000, 1..40),
        budget in 0u64..48,
        chunk in 1usize..9,
        unbudgeted in 0u32..2,
        noisy in 0u32..2,
    ) {
        let (noisy, unbudgeted) = (noisy == 1, unbudgeted == 1);
        let p = problem(space.clone());
        let card = space.cardinality();
        let indices: Vec<u64> = picks.iter().map(|i| i % card).collect();

        let mk = |_: ()| {
            let e = Evaluator::with_protocol(&p, protocol(noisy));
            if unbudgeted { e } else { e.with_budget(budget) }
        };
        let serial = mk(());
        let batched = mk(());

        let mut serial_results = Vec::new();
        for &idx in &indices {
            match serial.evaluate_index(idx) {
                Some(r) => serial_results.push(r),
                None => break,
            }
        }
        let mut batch_results = Vec::new();
        for window in indices.chunks(chunk) {
            let got = batched.evaluate_batch(window);
            let full = got.len() == window.len();
            batch_results.extend(got);
            if !full {
                break;
            }
        }

        prop_assert_eq!(&batch_results, &serial_results);
        prop_assert_eq!(batched.evals_used(), serial.evals_used());
        prop_assert_eq!(batched.distinct_evals(), serial.distinct_evals());
        // Memo state: probing an already-measured index on both sides
        // returns identical outcomes without growing `distinct`.
        if let Some(&probe) = indices.first() {
            let d1 = serial.distinct_evals();
            let a = serial.evaluate_index(probe);
            let b = batched.evaluate_index(probe);
            prop_assert_eq!(a, b);
            if !serial_results.is_empty() {
                prop_assert_eq!(serial.distinct_evals(), d1);
            }
        }
    }

    /// Every tuner — the 13 single-objective defaults plus NSGA-II —
    /// survives a fault model under which *every* measurement fails, for
    /// each failure species (crash, transient, timeout), at any batch
    /// size: the run terminates, reports zero successes, and stays inside
    /// the retry-charged budget envelope.
    #[test]
    fn all_tuners_survive_all_failing_batches(
        space in arb_space(),
        seed in 0u64..200,
        batch in 1u32..8,
        species in 0u32..3,
    ) {
        let model = match species {
            0 => FaultModel { crash_rate: 1.0, ..FaultModel::disabled() },
            // The transient rate is scaled per-architecture by a factor in
            // [0.5, 1.5); 2.0 keeps the effective rate at or above 1.
            1 => FaultModel { transient_rate: 2.0, ..FaultModel::disabled() },
            _ => FaultModel { timeout_rate: 1.0, ..FaultModel::disabled() },
        };
        let policy = RetryPolicy::default();
        let p = problem(space.clone());
        let budget = 24u64;
        // Retryable species charge up to `max_retries` extra evals per
        // evaluation started before the budget ran out.
        let envelope = budget + policy.max_retries as u64 * (batch as u64).max(1);
        let proto = Protocol::noiseless().with_batch(batch);
        for tuner in bat::tuners::default_tuners() {
            let e = Evaluator::with_protocol(&p, proto).with_budget(budget).with_faults(model, policy);
            let run = tuner.tune(&e, seed);
            prop_assert_eq!(run.successes(), 0, "{} succeeded in a dead space", tuner.name());
            prop_assert!(run.best().is_none(), "{}", tuner.name());
            prop_assert!(e.evals_used() <= envelope, "{} spent {} > {envelope}", tuner.name(), e.evals_used());
        }
        let e = Evaluator::with_protocol(&p, proto)
            .with_energy()
            .with_budget(budget)
            .with_faults(model, policy);
        let run = Nsga2::default().tune(&e, seed);
        prop_assert_eq!(run.successes(), 0);
        prop_assert!(run.best().is_none());
    }

    /// Random fault-rate mixes: every tuner completes, and two identical
    /// runs — including retry and quarantine counters — are equal, because
    /// every fault draw is a pure function of (seed, config, attempt), not
    /// of execution order or shared RNG state.
    #[test]
    fn fault_rate_sweeps_stay_deterministic(
        space in arb_space(),
        seed in 0u64..200,
        batch in 1u32..6,
        transient in 0u32..4,
        timeout in 0u32..3,
        crash in 0u32..3,
    ) {
        let model = FaultModel {
            transient_rate: f64::from(transient) * 0.07,
            timeout_rate: f64::from(timeout) * 0.05,
            crash_rate: f64::from(crash) * 0.04,
            outlier_rate: 0.05,
            ..FaultModel::disabled()
        };
        let policy = RetryPolicy { quarantine_after: 2, ..RetryPolicy::default() };
        let p = problem(space.clone());
        let proto = Protocol::noiseless().with_batch(batch);
        let budget = 20u64;
        let mk = || Evaluator::with_protocol(&p, proto).with_budget(budget).with_faults(model, policy);
        for tuner in bat::tuners::default_tuners() {
            let (e1, e2) = (mk(), mk());
            let a = tuner.tune(&e1, seed);
            let b = tuner.tune(&e2, seed);
            prop_assert_eq!(&a, &b, "{} diverged under faults", tuner.name());
            prop_assert_eq!(e1.evals_used(), e2.evals_used());
            prop_assert_eq!(e1.retries_used(), e2.retries_used());
            prop_assert_eq!(e1.quarantined_configs(), e2.quarantined_configs());
        }
        let mk_moo = || mk().with_energy();
        let (e1, e2) = (mk_moo(), mk_moo());
        let tuner = Nsga2::default();
        prop_assert_eq!(tuner.tune(&e1, seed), tuner.tune(&e2, seed));
        prop_assert_eq!(e1.retries_used(), e2.retries_used());
    }

    /// Thread-count sweep: the serialized bytes of a whole run — trials,
    /// measurements, retry/quarantine counters — are identical at 1, 2 and
    /// 4 worker threads, on fault-free and faulted campaigns alike. This
    /// is the quality-neutrality contract of the worker pool: thread count
    /// is an execution detail, never an input to the science.
    #[test]
    fn runs_are_byte_identical_across_thread_counts(
        space in arb_space(),
        seed in 0u64..300,
        batch in 2u32..10,
        noisy in 0u32..2,
        faulted in 0u32..2,
    ) {
        let p = problem(space.clone());
        let proto = protocol(noisy == 1).with_batch(batch);
        let budget = 60u64;
        let model = FaultModel {
            transient_rate: 0.08,
            timeout_rate: 0.04,
            crash_rate: 0.03,
            ..FaultModel::disabled()
        };
        let run_at = |threads: usize| -> (String, u64, u64) {
            rayon::with_thread_limit(threads, || {
                let e = Evaluator::with_protocol(&p, proto).with_budget(budget);
                let e = if faulted == 1 {
                    e.with_faults(model, RetryPolicy::default())
                } else {
                    e
                };
                let run = GeneticAlgorithm::default().tune(&e, seed);
                (
                    serde_json::to_string(&run).expect("serializable run"),
                    e.evals_used(),
                    e.retries_used(),
                )
            })
        };
        let baseline = run_at(1);
        for threads in [2usize, 4] {
            let swept = run_at(threads);
            prop_assert_eq!(&swept, &baseline, "{threads} threads diverged");
        }
    }

    /// At any fixed batch size, runs are deterministic and spend exactly
    /// the full budget for never-finishing tuners.
    #[test]
    fn batched_runs_are_deterministic_across_repeats(
        space in arb_space(),
        seed in 0u64..500,
        batch in 1u32..16,
    ) {
        let p = problem(space.clone());
        let budget = 120u64;
        for tuner in [
            Box::new(RandomSearch) as Box<dyn Tuner>,
            Box::new(GeneticAlgorithm::default()),
            Box::new(ParticleSwarm::default()),
            Box::new(LocalSearch::default()),
        ] {
            let proto = Protocol::noiseless().with_batch(batch);
            let e1 = Evaluator::with_protocol(&p, proto).with_budget(budget);
            let e2 = Evaluator::with_protocol(&p, proto).with_budget(budget);
            let a = tuner.tune(&e1, seed);
            let b = tuner.tune(&e2, seed);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.trials.len() as u64, budget, "{}", tuner.name());
        }
    }
}
