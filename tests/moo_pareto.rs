//! Multi-objective subsystem contract tests: the Pareto-archive invariant,
//! pinned power-model outputs, scalarized campaign determinism across
//! thread counts, and the committed pareto smoke spec's full
//! run → resume → summary round trip.

use bat::core::TuningProblem;
use bat::harness::{run_campaign, run_campaign_serial, ObjectiveMode, ObjectiveSpec};
use bat::moo::{ParetoArchive, ParetoPoint};
use bat::prelude::*;
use proptest::prelude::*;

/// Pinned (benchmark, architecture, config index) → (time_ms, energy_mj)
/// triples. These are pure model outputs: any change to the timing or
/// power constants must fail here first, loudly, instead of silently
/// shifting every archived multi-objective artifact.
#[test]
fn energy_model_outputs_are_pinned() {
    #[allow(clippy::excessive_precision)]
    let pinned: [(&str, &str, u64, f64, f64); 6] = [
        (
            "gemm",
            "RTX 2080 Ti",
            0,
            2.7074591385200588e1,
            4.43678018479476e3,
        ),
        (
            "gemm",
            "RTX 3060",
            0,
            4.36040917477419e1,
            3.235358037073007e3,
        ),
        (
            "gemm",
            "RTX 3090",
            0,
            1.749754201552258e1,
            2.9472730891130227e3,
        ),
        (
            "gemm",
            "RTX Titan",
            0,
            2.4767972078323105e1,
            4.642598200248314e3,
        ),
        (
            "hotspot",
            "RTX 3090",
            0,
            5.804041084013331e0,
            8.251548227473478e2,
        ),
        (
            "nbody",
            "RTX 2080 Ti",
            2,
            1.7143728258994207e2,
            2.7630051825412243e4,
        ),
    ];
    for (bench, arch, index, time_ms, energy_mj) in pinned {
        let b = bat::kernels::benchmark(bench, GpuArch::by_name(arch).unwrap()).unwrap();
        let cfg = b.space().config_at(index);
        let (t, e) = b.evaluate_pure2(&cfg).unwrap();
        let e = e.expect("GPU benchmarks price energy");
        assert!(
            (t - time_ms).abs() <= 1e-12 * time_ms,
            "{bench}/{arch}#{index}: time {t} vs pinned {time_ms}"
        );
        assert!(
            (e - energy_mj).abs() <= 1e-12 * energy_mj,
            "{bench}/{arch}#{index}: energy {e} vs pinned {energy_mj}"
        );
        // And the time component matches the single-objective path exactly.
        assert_eq!(t, b.evaluate_pure(&cfg).unwrap());
    }
}

proptest! {
    /// The archive never retains a point that another member (weakly)
    /// dominates, stays sorted, and respects its capacity — under any
    /// insertion stream and any capacity.
    #[test]
    fn archive_never_retains_a_dominated_point(
        capacity in 1usize..24,
        raw in proptest::collection::vec((0u32..500, 0u32..500), 1..200),
    ) {
        let mut archive = ParetoArchive::new(capacity);
        for (i, (t, e)) in raw.iter().enumerate() {
            archive.insert(ParetoPoint {
                index: i as u64,
                time_ms: 0.5 + f64::from(*t) / 10.0,
                energy_mj: 0.5 + f64::from(*e) / 10.0,
            });
            prop_assert!(archive.check_invariants().is_ok(),
                "{:?}", archive.check_invariants());
            prop_assert!(archive.len() <= capacity);
            prop_assert!(!archive.is_empty());
        }
        // Explicit cross-check of the non-domination invariant.
        let front = archive.front();
        for a in front {
            for b in front {
                prop_assert!(
                    std::ptr::eq(a, b) || !a.dominates(b),
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }

    /// Scalarized campaigns are byte-identical across thread counts: the
    /// parallel (rayon pool) and strictly serial executions must serialize
    /// to the same artifact, for every blend mode.
    #[test]
    fn scalarized_campaigns_are_byte_identical_across_thread_counts(
        seed in 0u64..64,
        mode_idx in 0usize..4,
        weight in 1u32..10,
    ) {
        let mode = [
            ObjectiveMode::Energy,
            ObjectiveMode::Edp,
            ObjectiveMode::Scalarized,
            ObjectiveMode::Chebyshev,
        ][mode_idx];
        let blended = matches!(mode, ObjectiveMode::Scalarized | ObjectiveMode::Chebyshev);
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into(), "greedy-ils".into()]),
            benchmarks: Selector::Subset(vec!["nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 3060".into()]),
            budget: 12,
            repetitions: 2,
            seed,
            objective: ObjectiveSpec {
                mode,
                weight: blended.then_some(f64::from(weight) / 10.0),
                ..ObjectiveSpec::default()
            },
            record: bat::harness::RecordLevel::Curve,
            ..ExperimentSpec::new("moo-prop")
        };
        let parallel = run_campaign(&spec).unwrap();
        let serial = run_campaign_serial(&spec).unwrap();
        prop_assert_eq!(parallel.result.to_json(), serial.result.to_json());
    }
}

/// The committed pareto smoke spec round-trips: run → resume (everything
/// reused) → summary with hypervolume per tuner. This is the in-repo
/// mirror of the CI `experiment-smoke` pareto leg.
#[test]
fn pareto_smoke_spec_round_trips_with_hypervolume() {
    let spec = bat::harness::load_spec_file(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/pareto-smoke.json"
    ))
    .unwrap();
    assert_eq!(spec.objective.mode, ObjectiveMode::Pareto);

    let run = run_campaign(&spec).unwrap();
    assert!(run.complete);

    // Resume from the artifact's JSON: everything is reused, bytes match.
    let parsed = CampaignResult::from_json(&run.result.to_json()).unwrap();
    let resumed = resume_campaign(&spec, &parsed).unwrap();
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.reused, run.result.trials.len());
    assert_eq!(resumed.result.to_json(), run.result.to_json());

    // Every trial recorded a clean bounded front with energy.
    for t in &run.result.trials {
        let front = t.front.as_ref().expect("pareto trials carry fronts");
        assert!(!front.is_empty() && front.len() <= 12);
        assert!(t.best_energy_mj.is_some());
    }

    // The summary reports hypervolume + front size per tuner, offline.
    let summary = CampaignSummary::from_result(&parsed);
    for cell in &summary.cells {
        for i in 0..cell.tuners.len() {
            assert!(cell.hypervolume[i].unwrap() > 0.0);
            assert!(cell.front_size[i].unwrap() >= 1.0);
        }
    }
    assert!(summary.render().contains("hypervolume"));
}

/// `nsga2` is reachable through the harness registry and deterministic
/// end to end on a real kernel (the `bat pareto` code path).
#[test]
fn nsga2_front_on_gemm_is_deterministic() {
    let tuner = bat::harness::tuner_by_name("nsga2").expect("nsga2 registered");
    let problem = bat::kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
    let fronts: Vec<Vec<bat::moo::ParetoPoint>> = (0..2)
        .map(|_| {
            let (run, _) = bat::harness::run_tuning_with_energy(
                &problem,
                tuner.as_ref(),
                Protocol::default(),
                150,
                7,
            );
            bat::moo::front_of_run(&run, 16).front().to_vec()
        })
        .collect();
    assert_eq!(fronts[0], fronts[1]);
    assert!(!fronts[0].is_empty());
}
