//! Equivalence properties for the histogram-binned training path and the
//! streaming landscape evaluator.
//!
//! The histogram trainer enumerates exactly the exact sort-based
//! splitter's candidate thresholds (binning is lossless at ≤ 256 distinct
//! values), so on integer-valued targets — where every partial sum is an
//! exactly-representable f64 regardless of summation order — the two
//! trainers must produce bit-identical trees. The streaming landscape
//! evaluator reorganizes work (chunks + one decode scratch per worker) but
//! must reproduce the naive materializing evaluation sample-for-sample.

use bat::core::SyntheticProblem;
use bat::ml::{Dataset, Gbdt, GbdtParams, RegressionTree, TreeParams};
use bat::prelude::*;
use bat::space::Param;
use proptest::prelude::*;

/// A regression dataset whose features take ≤ 37 distinct values (the BAT
/// parameter-space shape) and whose targets are small integers, so target
/// sums are exact in either summation order.
fn arb_discrete_dataset() -> impl Strategy<Value = (Dataset, Vec<f64>)> {
    (1usize..4, 20usize..160).prop_flat_map(|(d, n)| {
        let cells = proptest::collection::vec(0u32..37, n * d);
        let targets = proptest::collection::vec(-50i32..50, n);
        (cells, targets).prop_map(move |(cells, targets)| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..d).map(|j| f64::from(cells[i * d + j])).collect())
                .collect();
            let y: Vec<f64> = targets.iter().map(|&t| f64::from(t)).collect();
            let names = (0..d).map(|j| format!("p{j}")).collect();
            (Dataset::new(&rows, y.clone(), names), y)
        })
    })
}

proptest! {
    /// Histogram-trained trees are bit-identical to sort-based trees on
    /// discrete datasets with integer targets — on training rows and on
    /// off-grid queries (thresholds must match too).
    #[test]
    fn histogram_tree_equals_exact_tree(
        (data, y) in arb_discrete_dataset(),
        max_depth in 1usize..8,
        min_leaf in 1usize..6,
        lambda_idx in 0usize..3,
        queries in proptest::collection::vec(-5.0f64..42.0, 12),
    ) {
        // Newton leaf refit (λ > 0) must hold the equivalence exactly like
        // the first-order leaves: both paths divide the identical node sum
        // by the identical regularized count.
        let leaf_lambda = [0.0f64, 1.0, 4.5][lambda_idx];
        let params = TreeParams { max_depth, min_samples_leaf: min_leaf, leaf_lambda };
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let hist = RegressionTree::fit(&data, &y, &rows, &params);
        let exact = RegressionTree::fit_exact(&data, &y, &rows, &params);
        prop_assert_eq!(hist.len(), exact.len(), "tree shapes differ");
        for i in 0..data.n_rows() {
            prop_assert_eq!(hist.predict(data.row(i)), exact.predict(data.row(i)));
        }
        let d = data.n_features();
        for w in queries.windows(d.max(1)) {
            if w.len() == d {
                prop_assert_eq!(hist.predict(w), exact.predict(w));
            }
        }
    }

    /// Full boosted ensembles agree between the histogram and exact paths.
    /// Later-stage residuals are no longer integers, so ulp-level rounding
    /// may differ between summation orders — predictions must still agree
    /// to floating-point noise.
    #[test]
    fn histogram_gbdt_matches_exact_gbdt(
        (data, _y) in arb_discrete_dataset(),
        sub_idx in 0usize..2,
        lambda_idx in 0usize..2,
        seed in 0u64..32,
    ) {
        let subsample = [1.0f64, 0.6][sub_idx];
        let leaf_lambda = [0.0f64, 2.0][lambda_idx];
        let params = GbdtParams {
            n_trees: 12,
            subsample,
            seed,
            tree: TreeParams { max_depth: 4, min_samples_leaf: 2, leaf_lambda },
            ..GbdtParams::default()
        };
        let hist = Gbdt::fit(&data, &params).predict_dataset(&data);
        let exact = Gbdt::fit_exact(&data, &params).predict_dataset(&data);
        for (h, e) in hist.iter().zip(&exact) {
            prop_assert!(
                (h - e).abs() <= 1e-9 * (1.0 + e.abs()),
                "hist {} vs exact {}", h, e
            );
        }
    }

    /// The chunked streaming exhaustive evaluator reproduces the naive
    /// per-index materializing evaluation sample-for-sample.
    #[test]
    fn streaming_exhaustive_matches_materializing(
        a_len in 2i64..8,
        b_len in 2i64..8,
        c_len in 2i64..6,
        forbidden in 0i64..6,
    ) {
        let space = ConfigSpace::builder()
            .param(Param::int_range("a", 0, a_len - 1))
            .param(Param::int_range("b", 0, b_len - 1))
            .param(Param::int_range("c", 0, c_len - 1))
            .restrict(format!("c != {forbidden}").as_str())
            .build()
            .unwrap();
        let p = SyntheticProblem::new("toy", "sim", space, |cfg| {
            Ok(1.0 + cfg[0] as f64 * 3.0 + cfg[1] as f64 + 0.25 * cfg[2] as f64)
        });
        let streamed = Landscape::exhaustive(&p);
        // Oracle: one config_at allocation per index, serial.
        let space = p.space();
        prop_assert_eq!(streamed.samples.len() as u64, space.cardinality());
        for (i, s) in streamed.samples.iter().enumerate() {
            let index = i as u64;
            let config = space.config_at(index);
            let expect = p.evaluate_pure(&config).ok();
            prop_assert_eq!(s.index, index);
            prop_assert_eq!(s.time_ms, expect);
        }
    }

    /// The streaming sampled-landscape path agrees with per-index
    /// evaluation on exactly the indices it drew.
    #[test]
    fn streaming_sampled_matches_materializing(seed in 0u64..64, n in 5usize..60) {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 19))
            .param(Param::int_range("y", 0, 9))
            .build()
            .unwrap();
        let p = SyntheticProblem::new("toy", "sim", space, |cfg| {
            if cfg[0] == 7 {
                Err(bat::core::EvalFailure::Launch("x=7 fails".into()))
            } else {
                Ok(1.0 + (cfg[0] * 10 + cfg[1]) as f64)
            }
        });
        let l = Landscape::sampled(&p, n, seed);
        prop_assert_eq!(l.samples.len(), n);
        let space = p.space();
        for s in &l.samples {
            let config = space.config_at(s.index);
            prop_assert_eq!(s.time_ms, p.evaluate_pure(&config).ok());
        }
        // Determinism of the streaming path.
        let again = Landscape::sampled(&p, n, seed);
        prop_assert_eq!(l.samples, again.samples);
    }
}
