//! Paper-level invariants: the quantitative anchors from the BAT 2.0 paper
//! that the reproduction pins down exactly, and the qualitative shapes it
//! must preserve.

use bat::analysis::sampled_valid;
use bat::prelude::*;

/// Table VIII, column 1 — exact products of Tables I–VII.
#[test]
fn table_viii_cardinalities_exact() {
    let expected: [(&str, u64); 7] = [
        ("pnpoly", 4_092),
        ("nbody", 9_408),
        ("convolution", 18_432),
        ("gemm", 82_944),
        ("expdist", 9_732_096),
        ("hotspot", 22_200_000),
        ("dedisp", 123_863_040),
    ];
    for (name, cardinality) in expected {
        let space = bat::kernels::kernel_by_name(name).unwrap().build_space();
        assert_eq!(space.cardinality(), cardinality, "{name}");
    }
}

/// Table VIII, column 2 — GEMM's constrained count matches the paper
/// exactly (CLBlast restrictions with KWG = 32 folded in); Pnpoly has no
/// restrictions; Hotspot is within 1% of the paper's count.
#[test]
fn table_viii_constrained_counts() {
    let gemm = bat::kernels::kernel_by_name("gemm").unwrap().build_space();
    assert_eq!(gemm.count_valid_factored(), 17_956, "paper value, exact");

    let pnpoly = bat::kernels::kernel_by_name("pnpoly")
        .unwrap()
        .build_space();
    assert_eq!(pnpoly.count_valid_factored(), 4_092, "paper value, exact");

    let hotspot = bat::kernels::kernel_by_name("hotspot")
        .unwrap()
        .build_space();
    let count = hotspot.count_valid_factored() as f64;
    let paper = 21_850_147.0;
    assert!(
        (count - paper).abs() / paper < 0.01,
        "hotspot constrained {count} vs paper {paper}"
    );
}

/// §VI-A / Fig. 1b: Hotspot has a detached cluster of very fast
/// configurations.
#[test]
fn hotspot_has_a_fast_cluster() {
    let problem = bat::kernels::benchmark("hotspot", GpuArch::rtx_3090()).unwrap();
    let landscape = sampled_valid(&problem, 4_000, 1, 40_000_000).unwrap();
    let dist = PerformanceDistribution::from_times(&landscape.times(), 25).unwrap();
    assert!(
        dist.best_rel > 3.5,
        "hotspot best-vs-median should be large, got {:.2}",
        dist.best_rel
    );
    assert!(
        dist.fast_cluster_mass > 0.0005,
        "the fast cluster must be populated"
    );
}

/// Fig. 4: Hotspot's max-speedup-over-median is the largest of the suite on
/// Turing (the paper's outlier claim), and every benchmark shows > 1.2x.
#[test]
fn speedups_have_the_papers_shape() {
    let arch = GpuArch::rtx_2080_ti();
    let mut speedups = Vec::new();
    for name in bat::kernels::BENCHMARK_NAMES {
        let problem = bat::kernels::benchmark(name, arch.clone()).unwrap();
        let landscape = if ["pnpoly", "nbody", "gemm", "convolution"].contains(&name) {
            Landscape::exhaustive(&problem)
        } else {
            sampled_valid(&problem, 3_000, 0, 30_000_000).unwrap()
        };
        let s = max_speedup_over_median(&landscape).unwrap();
        assert!(s > 1.2, "{name}: optimum barely beats median ({s:.2}x)");
        speedups.push((name, s));
    }
    let (max_name, _) = speedups
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert_eq!(*max_name, "hotspot", "speedups: {speedups:?}");
}

/// Fig. 5: transferring optimal configurations between architectures loses
/// performance; the matrix diagonal is exactly 1.
#[test]
fn portability_diagonal_is_unity_and_transfer_loses() {
    let archs = GpuArch::paper_testbed();
    let problems: Vec<_> = archs
        .iter()
        .map(|a| bat::kernels::benchmark("nbody", a.clone()).unwrap())
        .collect();
    let landscapes: Vec<_> = problems.iter().map(|p| Landscape::exhaustive(p)).collect();
    let refs: Vec<&dyn TuningProblem> = problems.iter().map(|p| p as &dyn TuningProblem).collect();
    let m = portability_matrix(&refs, &landscapes);
    for i in 0..4 {
        let d = m.values[i][i].unwrap();
        assert!((d - 1.0).abs() < 1e-9, "diagonal must be optimal");
    }
    let worst = m.worst_transfer().unwrap();
    assert!(
        worst < 0.999,
        "some transfer must lose performance, worst = {worst}"
    );
}

/// Fig. 6 / §VI-F: the regressor fits the landscapes well (paper: R² ≥
/// 0.992 except Convolution) and importance is consistent across GPUs.
#[test]
fn feature_importance_is_strong_and_consistent() {
    use bat::analysis::{default_gbdt_params, feature_importance};
    let mut top_features = Vec::new();
    for arch in GpuArch::paper_testbed() {
        let problem = bat::kernels::benchmark("nbody", arch).unwrap();
        let landscape = Landscape::exhaustive(&problem);
        let fi =
            feature_importance(problem.space(), &landscape, &default_gbdt_params(), 2, 0).unwrap();
        assert!(
            fi.r2 > 0.97,
            "R² = {} too weak on {}",
            fi.r2,
            problem.platform()
        );
        let top = fi
            .pfi
            .feature_names
            .iter()
            .zip(&fi.pfi.importances)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(n, _)| n.clone())
            .unwrap();
        top_features.push(top);
    }
    // The most important parameter is the same on every architecture.
    assert!(
        top_features.windows(2).all(|w| w[0] == w[1]),
        "top feature differs across GPUs: {top_features:?}"
    );
}

/// §VI-H: permutation importances sum past the baseline R² on GEMM —
/// the paper's evidence for parameter interactions and global optimization.
#[test]
fn gemm_importances_reveal_interactions() {
    use bat::analysis::{default_gbdt_params, feature_importance};
    let problem = bat::kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
    let landscape = Landscape::exhaustive(&problem);
    let fi = feature_importance(problem.space(), &landscape, &default_gbdt_params(), 2, 3).unwrap();
    assert!(
        fi.pfi.total_importance() > fi.pfi.baseline_r2 * 1.2,
        "sum {} vs baseline {}",
        fi.pfi.total_importance(),
        fi.pfi.baseline_r2
    );
}

/// Fig. 2: N-body and Expdist converge much faster than GEMM under random
/// search (the paper's ordering of convergence difficulty).
#[test]
fn convergence_ordering_matches_paper() {
    let arch = GpuArch::rtx_titan();
    let evals_to_90 = |name: &str, samples: usize| -> usize {
        let problem = bat::kernels::benchmark(name, arch.clone()).unwrap();
        let landscape = if samples == 0 {
            Landscape::exhaustive(&problem)
        } else {
            sampled_valid(&problem, samples, 2, 50_000_000).unwrap()
        };
        let times: Vec<Option<f64>> = landscape.samples.iter().map(|s| s.time_ms).collect();
        random_search_convergence(&times, 2_000, 60, 4)
            .evals_to_reach(0.9)
            .unwrap_or(2_001)
    };
    let nbody = evals_to_90("nbody", 0);
    let expdist = evals_to_90("expdist", 3_000);
    let gemm = evals_to_90("gemm", 0);
    assert!(
        nbody < gemm && expdist < gemm,
        "nbody {nbody}, expdist {expdist}, gemm {gemm}"
    );
}
