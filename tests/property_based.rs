//! Property-based tests (proptest) on the suite's core data structures and
//! invariants.

use bat::prelude::*;
use bat::space::{sample_indices, Param};
use proptest::prelude::*;

/// Strategy: a random configuration space of 1–5 parameters with 1–9 values
/// each (values distinct by construction).
fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    proptest::collection::vec(1usize..9, 1..5).prop_map(|radices| {
        let mut b = ConfigSpace::builder();
        for (i, r) in radices.iter().enumerate() {
            let values: Vec<i64> = (0..*r as i64).map(|v| v * v + 1).collect();
            b = b.param(Param::new(format!("p{i}"), values));
        }
        b.build().unwrap()
    })
}

proptest! {
    /// The dense index ↔ configuration mapping is a bijection.
    #[test]
    fn index_bijection(space in arb_space(), salt in 0u64..1000) {
        let idx = salt % space.cardinality();
        let cfg = space.config_at(idx);
        prop_assert_eq!(space.index_of(&cfg), Some(idx));
    }

    /// Neighbour relations are symmetric and never self-referential.
    #[test]
    fn neighbors_symmetric(space in arb_space(), salt in 0u64..1000) {
        let idx = salt % space.cardinality();
        for nb in [Neighborhood::HammingAny, Neighborhood::Adjacent] {
            for n in nb.neighbor_indices(&space, idx) {
                prop_assert_ne!(n, idx);
                prop_assert!(nb.neighbor_indices(&space, n).contains(&idx));
            }
        }
    }

    /// Uniform index samples always land inside the space.
    #[test]
    fn samples_in_range(space in arb_space(), seed in 0u64..99) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for idx in sample_indices(&space, 64, &mut rng) {
            prop_assert!(idx < space.cardinality());
        }
    }

    /// Restriction counting: brute force and factored agree on arbitrary
    /// modular restrictions.
    #[test]
    fn counting_methods_agree(radix_a in 2usize..8, radix_b in 2usize..8, k in 1i64..5) {
        let space = ConfigSpace::builder()
            .param(Param::new("a", (1..=radix_a as i64).collect::<Vec<_>>()))
            .param(Param::new("b", (1..=radix_b as i64).collect::<Vec<_>>()))
            .param(Param::boolean("c"))
            .restrict(&format!("a % {k} == b % {k}"))
            .build()
            .unwrap();
        prop_assert_eq!(space.count_valid(), space.count_valid_factored());
    }

    /// Expression evaluator agrees with a direct Rust oracle on a family of
    /// arithmetic comparisons.
    #[test]
    fn expression_oracle(a in 1i64..100, b in 1i64..100, c in 1i64..100) {
        use bat::space::expr::{parse, CompiledExpr};
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let cases: Vec<(&str, bool)> = vec![
            ("a + b > c", a + b > c),
            ("a * b % c == 0", (a * b) % c == 0),
            ("a <= b or b <= c", a <= b || b <= c),
            ("not (a == b)", a != b),
            ("min(a, b) <= max(b, c)", a.min(b) <= b.max(c)),
            ("a // b + 1 >= 1", a / b + 1 >= 1),
            ("2 <= a + 1 <= 101", (2..=101).contains(&(a + 1))),
        ];
        for (src, expected) in cases {
            let compiled = CompiledExpr::compile(&parse(src).unwrap(), &names).unwrap();
            prop_assert_eq!(compiled.eval_bool(&[a, b, c]), expected, "{}", src);
        }
    }

    /// Measurement aggregation: the median lies within [min, max] of the
    /// samples and is permutation-invariant.
    #[test]
    fn measurement_median_bounds(mut samples in proptest::collection::vec(0.1f64..100.0, 1..20)) {
        let m = Measurement::from_samples(samples.clone());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m.time_ms >= lo && m.time_ms <= hi);
        samples.reverse();
        let m2 = Measurement::from_samples(samples);
        prop_assert_eq!(m.time_ms, m2.time_ms);
    }

    /// Occupancy is monotone: more registers or more shared memory per
    /// block never increase the number of resident blocks.
    #[test]
    fn occupancy_monotone(threads in 32u32..1024, regs in 16u32..128, smem in 0u32..49_152) {
        use bat::gpusim::{occupancy, BlockResources};
        let arch = GpuArch::rtx_3090();
        let base = BlockResources { threads, regs_per_thread: regs, smem_bytes: smem, launch_bounds_blocks: 0 };
        if let Ok(o1) = occupancy(&arch, &base) {
            let heavier = BlockResources { regs_per_thread: regs + 32, ..base };
            if let Ok(o2) = occupancy(&arch, &heavier) {
                prop_assert!(o2.blocks_per_sm <= o1.blocks_per_sm);
            }
            let fatter = BlockResources { smem_bytes: smem + 8192, ..base };
            if let Ok(o3) = occupancy(&arch, &fatter) {
                prop_assert!(o3.blocks_per_sm <= o1.blocks_per_sm);
            }
        }
    }

    /// The timing model is deterministic, positive, and monotone in total
    /// work.
    #[test]
    fn timing_monotone_in_work(flops in 1.0f64..1e6, blocks in 1u64..4096) {
        let arch = GpuArch::rtx_2080_ti();
        let mut m = KernelModel::new("p", blocks, 128);
        m.flops_per_thread = flops;
        let t1 = bat::gpusim::execute(&arch, &m).unwrap().time_ms;
        m.flops_per_thread = flops * 2.0;
        let t2 = bat::gpusim::execute(&arch, &m).unwrap().time_ms;
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 >= t1);
    }

    /// Tuning runs respect arbitrary budgets exactly (random search).
    #[test]
    fn budget_exact(budget in 1u64..120, seed in 0u64..50) {
        let problem = bat::kernels::benchmark("pnpoly", GpuArch::rtx_3060()).unwrap();
        let evaluator = Evaluator::with_protocol(&problem, Protocol::noiseless()).with_budget(budget);
        let run = RandomSearch.tune(&evaluator, seed);
        prop_assert_eq!(run.trials.len() as u64, budget);
    }

    /// Run records survive JSON round trips.
    #[test]
    fn record_round_trip(budget in 1u64..40, seed in 0u64..20) {
        let problem = bat::kernels::benchmark("nbody", GpuArch::rtx_titan()).unwrap();
        let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(budget);
        let run = RandomSearch.tune(&evaluator, seed);
        let back = TuningRun::from_json(&run.to_json()).unwrap();
        prop_assert_eq!(run, back);
    }
}
