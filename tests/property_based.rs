//! Property-based tests (proptest) on the suite's core data structures and
//! invariants.

use bat::prelude::*;
use bat::space::expr::CompiledExpr;
use bat::space::{sample_indices, Param};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random configuration space of 1–5 parameters with 1–9 values
/// each (values distinct by construction).
fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    proptest::collection::vec(1usize..9, 1..5).prop_map(|radices| {
        let mut b = ConfigSpace::builder();
        for (i, r) in radices.iter().enumerate() {
            let values: Vec<i64> = (0..*r as i64).map(|v| v * v + 1).collect();
            b = b.param(Param::new(format!("p{i}"), values));
        }
        b.build().unwrap()
    })
}

proptest! {
    /// The dense index ↔ configuration mapping is a bijection.
    #[test]
    fn index_bijection(space in arb_space(), salt in 0u64..1000) {
        let idx = salt % space.cardinality();
        let cfg = space.config_at(idx);
        prop_assert_eq!(space.index_of(&cfg), Some(idx));
    }

    /// Neighbour relations are symmetric and never self-referential.
    #[test]
    fn neighbors_symmetric(space in arb_space(), salt in 0u64..1000) {
        let idx = salt % space.cardinality();
        for nb in [Neighborhood::HammingAny, Neighborhood::Adjacent] {
            for n in nb.neighbor_indices(&space, idx) {
                prop_assert_ne!(n, idx);
                prop_assert!(nb.neighbor_indices(&space, n).contains(&idx));
            }
        }
    }

    /// Uniform index samples always land inside the space.
    #[test]
    fn samples_in_range(space in arb_space(), seed in 0u64..99) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for idx in sample_indices(&space, 64, &mut rng) {
            prop_assert!(idx < space.cardinality());
        }
    }

    /// Restriction counting: brute force and factored agree on arbitrary
    /// modular restrictions.
    #[test]
    fn counting_methods_agree(radix_a in 2usize..8, radix_b in 2usize..8, k in 1i64..5) {
        let space = ConfigSpace::builder()
            .param(Param::new("a", (1..=radix_a as i64).collect::<Vec<_>>()))
            .param(Param::new("b", (1..=radix_b as i64).collect::<Vec<_>>()))
            .param(Param::boolean("c"))
            .restrict(&format!("a % {k} == b % {k}"))
            .build()
            .unwrap();
        prop_assert_eq!(space.count_valid(), space.count_valid_factored());
    }

    /// Expression evaluator agrees with a direct Rust oracle on a family of
    /// arithmetic comparisons.
    #[test]
    fn expression_oracle(a in 1i64..100, b in 1i64..100, c in 1i64..100) {
        use bat::space::expr::{parse, CompiledExpr};
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let cases: Vec<(&str, bool)> = vec![
            ("a + b > c", a + b > c),
            ("a * b % c == 0", (a * b) % c == 0),
            ("a <= b or b <= c", a <= b || b <= c),
            ("not (a == b)", a != b),
            ("min(a, b) <= max(b, c)", a.min(b) <= b.max(c)),
            ("a // b + 1 >= 1", a / b + 1 >= 1),
            ("2 <= a + 1 <= 101", (2..=101).contains(&(a + 1))),
        ];
        for (src, expected) in cases {
            let compiled = CompiledExpr::compile(&parse(src).unwrap(), &names).unwrap();
            prop_assert_eq!(compiled.eval_bool(&[a, b, c]), expected, "{}", src);
        }
    }

    /// Measurement aggregation: the median lies within [min, max] of the
    /// samples and is permutation-invariant.
    #[test]
    fn measurement_median_bounds(mut samples in proptest::collection::vec(0.1f64..100.0, 1..20)) {
        let m = Measurement::from_samples(samples.clone());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m.time_ms >= lo && m.time_ms <= hi);
        samples.reverse();
        let m2 = Measurement::from_samples(samples);
        prop_assert_eq!(m.time_ms, m2.time_ms);
    }

    /// Occupancy is monotone: more registers or more shared memory per
    /// block never increase the number of resident blocks.
    #[test]
    fn occupancy_monotone(threads in 32u32..1024, regs in 16u32..128, smem in 0u32..49_152) {
        use bat::gpusim::{occupancy, BlockResources};
        let arch = GpuArch::rtx_3090();
        let base = BlockResources { threads, regs_per_thread: regs, smem_bytes: smem, launch_bounds_blocks: 0 };
        if let Ok(o1) = occupancy(&arch, &base) {
            let heavier = BlockResources { regs_per_thread: regs + 32, ..base };
            if let Ok(o2) = occupancy(&arch, &heavier) {
                prop_assert!(o2.blocks_per_sm <= o1.blocks_per_sm);
            }
            let fatter = BlockResources { smem_bytes: smem + 8192, ..base };
            if let Ok(o3) = occupancy(&arch, &fatter) {
                prop_assert!(o3.blocks_per_sm <= o1.blocks_per_sm);
            }
        }
    }

    /// The timing model is deterministic, positive, and monotone in total
    /// work.
    #[test]
    fn timing_monotone_in_work(flops in 1.0f64..1e6, blocks in 1u64..4096) {
        let arch = GpuArch::rtx_2080_ti();
        let mut m = KernelModel::new("p", blocks, 128);
        m.flops_per_thread = flops;
        let t1 = bat::gpusim::execute(&arch, &m).unwrap().time_ms;
        m.flops_per_thread = flops * 2.0;
        let t2 = bat::gpusim::execute(&arch, &m).unwrap().time_ms;
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 >= t1);
    }

    /// Tuning runs respect arbitrary budgets exactly (random search).
    #[test]
    fn budget_exact(budget in 1u64..120, seed in 0u64..50) {
        let problem = bat::kernels::benchmark("pnpoly", GpuArch::rtx_3060()).unwrap();
        let evaluator = Evaluator::with_protocol(&problem, Protocol::noiseless()).with_budget(budget);
        let run = RandomSearch.tune(&evaluator, seed);
        prop_assert_eq!(run.trials.len() as u64, budget);
    }

    /// Run records survive JSON round trips.
    #[test]
    fn record_round_trip(budget in 1u64..40, seed in 0u64..20) {
        let problem = bat::kernels::benchmark("nbody", GpuArch::rtx_titan()).unwrap();
        let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(budget);
        let run = RandomSearch.tune(&evaluator, seed);
        let back = TuningRun::from_json(&run.to_json()).unwrap();
        prop_assert_eq!(run, back);
    }
}

// ---------------------------------------------------------------------------
// Enumeration-engine equivalence properties
// ---------------------------------------------------------------------------

/// Build a random compiled expression over `n_slots` slots. Covers every
/// node kind the restriction language has (arithmetic, short-circuit
/// logic, chained comparisons, builtins) with small literals.
fn gen_expr(rng: &mut StdRng, depth: u32, n_slots: usize) -> CompiledExpr {
    use bat::space::expr::{BinOp, CmpOp, UnOp};
    use rand::Rng;
    if depth == 0 || rng.random_range(0..4u32) == 0 {
        return match rng.random_range(0..4u32) {
            0 => CompiledExpr::Int(rng.random_range(-8i64..9)),
            1 => CompiledExpr::Float(rng.random_range(-4i64..5) as f64 * 0.5),
            _ => CompiledExpr::Slot(rng.random_range(0..n_slots)),
        };
    }
    let bin_ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::FloorDiv,
        BinOp::Mod,
        BinOp::Pow,
        BinOp::And,
        BinOp::Or,
    ];
    let cmp_ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    match rng.random_range(0..4u32) {
        0 => {
            let op = if rng.random_bool(0.5) {
                UnOp::Neg
            } else {
                UnOp::Not
            };
            CompiledExpr::Unary(op, Box::new(gen_expr(rng, depth - 1, n_slots)))
        }
        1 => CompiledExpr::Binary(
            bin_ops[rng.random_range(0..bin_ops.len())],
            Box::new(gen_expr(rng, depth - 1, n_slots)),
            Box::new(gen_expr(rng, depth - 1, n_slots)),
        ),
        2 => {
            let links = (0..rng.random_range(1..3usize))
                .map(|_| {
                    (
                        cmp_ops[rng.random_range(0..cmp_ops.len())],
                        gen_expr(rng, depth - 1, n_slots),
                    )
                })
                .collect();
            CompiledExpr::Compare(Box::new(gen_expr(rng, depth - 1, n_slots)), links)
        }
        _ => {
            let n_args = rng.random_range(1..4usize);
            let args: Vec<CompiledExpr> = (0..n_args)
                .map(|_| gen_expr(rng, depth - 1, n_slots))
                .collect();
            gen_call(rng, args)
        }
    }
}

/// Random builtin call over pre-generated arguments, built by compiling a
/// `min(q0, q1, ...)`-style template and splicing the arguments in for the
/// template's slots (the `Builtin` type itself is not exported).
fn gen_call(rng: &mut StdRng, args: Vec<CompiledExpr>) -> CompiledExpr {
    use bat::space::expr::parse;
    use rand::Rng;
    // min/max require at least two arguments; fall back to abs otherwise.
    let name = match rng.random_range(0..3u32) {
        0 if args.len() >= 2 => "min",
        1 if args.len() >= 2 => "max",
        _ => "abs",
    };
    let arity = if name == "abs" { 1 } else { args.len() };
    let arg_names: Vec<String> = (0..arity).map(|i| format!("q{i}")).collect();
    let src = format!("{name}({})", arg_names.join(", "));
    let template = CompiledExpr::compile(&parse(&src).unwrap(), &arg_names).unwrap();
    substitute_slots(&template, &args[..arity])
}

/// Replace `Slot(i)` with `subs[i]` throughout.
fn substitute_slots(e: &CompiledExpr, subs: &[CompiledExpr]) -> CompiledExpr {
    match e {
        CompiledExpr::Slot(i) => subs[*i].clone(),
        CompiledExpr::Int(_) | CompiledExpr::Float(_) => e.clone(),
        CompiledExpr::Unary(op, inner) => {
            CompiledExpr::Unary(*op, Box::new(substitute_slots(inner, subs)))
        }
        CompiledExpr::Binary(op, a, b) => CompiledExpr::Binary(
            *op,
            Box::new(substitute_slots(a, subs)),
            Box::new(substitute_slots(b, subs)),
        ),
        CompiledExpr::Compare(first, links) => CompiledExpr::Compare(
            Box::new(substitute_slots(first, subs)),
            links
                .iter()
                .map(|(op, l)| (*op, substitute_slots(l, subs)))
                .collect(),
        ),
        CompiledExpr::Call(b, args) => {
            CompiledExpr::Call(*b, args.iter().map(|a| substitute_slots(a, subs)).collect())
        }
    }
}

fn nums_agree(a: bat::space::Num, b: bat::space::Num) -> bool {
    use bat::space::Num;
    match (a, b) {
        (Num::Float(x), Num::Float(y)) if x.is_nan() && y.is_nan() => true,
        _ => a == b,
    }
}

proptest! {
    /// Tentpole invariant (a): the bytecode VM computes exactly what the
    /// tree-walking evaluator computes, on arbitrary expressions and
    /// configurations — numerically, not just truthiness.
    #[test]
    fn vm_equals_tree_walk_on_random_expressions(seed in 0u64..2000) {
        use bat::space::expr::Program;
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let n_slots = rng.random_range(1..5usize);
        let expr = gen_expr(&mut rng, 4, n_slots);
        let program = Program::compile(&expr);
        for _ in 0..8 {
            let values: Vec<i64> =
                (0..n_slots).map(|_| rng.random_range(-6i64..13)).collect();
            prop_assert!(
                nums_agree(program.eval_num(&values), expr.eval_num(&values)),
                "vm {:?} != tree {:?} for {expr:?} on {values:?}",
                program.eval_num(&values),
                expr.eval_num(&values)
            );
            prop_assert_eq!(program.eval_bool(&values), expr.eval_bool(&values));
        }
    }

    /// Tentpole invariant (b): the prefix-pruned counter/enumerator agrees
    /// with exhaustive brute force on random restricted spaces.
    #[test]
    fn pruned_enumeration_equals_brute_force(
        radix_a in 2usize..6,
        radix_b in 2usize..6,
        radix_c in 2usize..5,
        k in 1i64..4,
        t in 2i64..13,
        picks in proptest::collection::vec(0usize..7, 1..4),
    ) {
        let mut b = ConfigSpace::builder()
            .param(Param::new("a", (1..=radix_a as i64).collect::<Vec<_>>()))
            .param(Param::new("b", (1..=radix_b as i64).collect::<Vec<_>>()))
            .param(Param::new("c", (1..=radix_c as i64).collect::<Vec<_>>()))
            .param(Param::boolean("d"));
        for pick in &picks {
            let src = match pick {
                0 => format!("a % {k} == b % {k}"),
                1 => format!("a * b <= {t}"),
                2 => "a != 2".to_string(),
                3 => format!("2 <= a * c <= {t}"),
                4 => "a + b >= c or c == 1".to_string(),
                5 => "not (a == b) or d == 1".to_string(),
                _ => format!("{t} > 1"), // constant: folded out at build
            };
            b = b.restrict(&src);
        }
        let space = b.build().unwrap();
        let mut scratch = vec![0i64; space.num_params()];
        let brute_indices: Vec<u64> = (0..space.cardinality())
            .filter(|&i| space.is_valid_index_into(i, &mut scratch))
            .collect();
        prop_assert_eq!(space.count_valid(), brute_indices.len() as u64);
        prop_assert_eq!(space.count_valid_brute(), brute_indices.len() as u64);
        prop_assert_eq!(space.count_valid_factored(), brute_indices.len() as u64);
        prop_assert_eq!(space.valid_indices(), brute_indices);
    }

    /// The patched-slot neighbour fast path agrees with decode-and-check.
    #[test]
    fn neighbor_fast_path_equals_naive(seed in 0u64..300) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rng.random_range(3i64..9);
        let space = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3, 4]))
            .param(Param::new("b", vec![1, 2, 3]))
            .param(Param::boolean("c"))
            .restrict(&format!("a * b <= {t}"))
            .restrict("b != 2 or c == 1")
            .build()
            .unwrap();
        let idx = rng.random_range(0..space.cardinality());
        let mut scratch = vec![0i64; space.num_params()];
        for nb in [Neighborhood::HammingAny, Neighborhood::Adjacent] {
            let naive: Vec<u64> = nb
                .neighbor_indices(&space, idx)
                .into_iter()
                .filter(|&n| space.is_valid_index_into(n, &mut scratch))
                .collect();
            prop_assert_eq!(nb.valid_neighbor_indices(&space, idx), naive);
        }
    }
}
