//! End-to-end integration: every benchmark × every architecture × several
//! tuners, through the full public API.

use bat::prelude::*;
use bat::tuners::default_tuners;

#[test]
fn every_benchmark_tunes_on_every_gpu() {
    for arch in GpuArch::paper_testbed() {
        for name in bat::kernels::BENCHMARK_NAMES {
            let problem = bat::kernels::benchmark(name, arch.clone()).unwrap();
            let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(60);
            let run = RandomSearch.tune(&evaluator, 7);
            assert_eq!(run.trials.len(), 60, "{name}/{}", arch.name);
            assert!(
                run.successes() > 0,
                "{name}/{} produced no valid measurement in 60 draws",
                arch.name
            );
            let best = run.best().unwrap();
            assert!(best.time_ms().unwrap() > 0.0);
            assert!(problem.space().is_valid(&best.config));
        }
    }
}

#[test]
fn tuning_is_deterministic_across_identical_sessions() {
    let arch = GpuArch::rtx_titan();
    for name in ["gemm", "hotspot"] {
        let p1 = bat::kernels::benchmark(name, arch.clone()).unwrap();
        let p2 = bat::kernels::benchmark(name, arch.clone()).unwrap();
        let e1 = Evaluator::with_protocol(&p1, Protocol::default()).with_budget(80);
        let e2 = Evaluator::with_protocol(&p2, Protocol::default()).with_budget(80);
        let r1 = SimulatedAnnealing::default().tune(&e1, 11);
        let r2 = SimulatedAnnealing::default().tune(&e2, 11);
        assert_eq!(r1, r2, "{name} must be bit-reproducible");
    }
}

#[test]
fn all_tuners_find_something_decent_on_nbody() {
    // N-body converges fast in the paper (90% at ~10 evals); with a 150-eval
    // budget every algorithm should be well past 60% of optimal.
    let arch = GpuArch::rtx_3090();
    let problem = bat::kernels::benchmark("nbody", arch).unwrap();
    let landscape = Landscape::exhaustive(&problem);
    let t_opt = landscape.best().unwrap().time_ms.unwrap();
    for tuner in default_tuners() {
        let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(150);
        let run = tuner.tune(&evaluator, 5);
        let best = run
            .best()
            .unwrap_or_else(|| panic!("{} found nothing", tuner.name()))
            .time_ms()
            .unwrap();
        assert!(
            t_opt / best > 0.6,
            "{}: reached only {:.1}% of optimal",
            tuner.name(),
            t_opt / best * 100.0
        );
    }
}

#[test]
fn evaluator_cache_and_budget_interact_correctly() {
    let problem = bat::kernels::benchmark("pnpoly", GpuArch::rtx_3060()).unwrap();
    let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(10);
    // Evaluate the same config 10 times: budget drains, cache holds one.
    for _ in 0..10 {
        let m = evaluator.evaluate_index(0).unwrap().unwrap();
        assert!(m.time_ms > 0.0);
    }
    assert!(evaluator.evaluate_index(0).is_none(), "budget exhausted");
    assert_eq!(evaluator.distinct_evals(), 1);
    assert_eq!(evaluator.evals_used(), 10);
}

#[test]
fn launch_failures_surface_as_eval_failures_not_panics() {
    let problem = bat::kernels::benchmark("dedisp", GpuArch::rtx_2080_ti()).unwrap();
    // 512 × 128 threads: restriction-valid, launch-invalid everywhere.
    let cfg = [512, 128, 2, 2, 0, 0, 8, 0];
    assert!(problem.space().is_valid(&cfg));
    let evaluator = Evaluator::with_protocol(&problem, Protocol::default());
    match evaluator.evaluate_config(&cfg).unwrap() {
        Err(EvalFailure::Launch(msg)) => assert!(msg.contains("threads")),
        other => panic!("expected launch failure, got {other:?}"),
    }
}

#[test]
fn generated_sources_reflect_configs_for_all_kernels() {
    for name in bat::kernels::BENCHMARK_NAMES {
        let spec = bat::kernels::kernel_by_name(name).unwrap();
        let space = spec.build_space();
        let cfg = space.config_at(space.cardinality() / 2);
        let src = spec.source(&cfg);
        assert!(src.contains("__global__"), "{name} source has no kernel");
        assert!(src.contains("#define"), "{name} source has no parameters");
    }
}
