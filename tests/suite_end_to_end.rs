//! End-to-end integration: every benchmark × every architecture × several
//! tuners, through the full public API — orchestrated by the harness's
//! declarative campaign engine rather than bespoke loops.

use bat::harness::{RecordLevel, TrialKey};
use bat::prelude::*;
use bat::tuners::default_tuners;

#[test]
fn every_benchmark_tunes_on_every_gpu() {
    // One campaign spec replaces the historical nested arch × benchmark
    // loop; the sequential seed policy reproduces its seed (7) exactly.
    let spec = ExperimentSpec {
        seed: 7,
        seed_policy: SeedPolicy::Sequential,
        tuners: Selector::Subset(vec!["random-search".into()]),
        benchmarks: Selector::All,
        architectures: Selector::All,
        budget: 60,
        repetitions: 1,
        ..ExperimentSpec::new("suite-e2e")
    };
    let run = run_campaign(&spec).expect("campaign runs");
    assert_eq!(run.result.trials.len(), 7 * 4);
    for t in &run.result.trials {
        assert_eq!(t.evals, 60, "{}/{}", t.benchmark, t.architecture);
        assert!(
            t.best_ms.is_some(),
            "{}/{} produced no valid measurement in 60 draws",
            t.benchmark,
            t.architecture
        );
        assert!(t.best_ms.unwrap() > 0.0);
        // The recorded best configuration must be valid in its space.
        let arch = GpuArch::by_name(&t.architecture).unwrap();
        let problem = bat::kernels::benchmark(&t.benchmark, arch).unwrap();
        let cfg: Vec<i64> = problem
            .space()
            .names()
            .iter()
            .map(|n| t.best_config[n])
            .collect();
        assert!(problem.space().is_valid(&cfg));
    }

    // The campaign path must agree number-for-number with driving the
    // public API directly, which is what the bespoke loop used to do.
    let problem = bat::kernels::benchmark("gemm", GpuArch::rtx_titan()).unwrap();
    let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(60);
    let direct = RandomSearch.tune(&evaluator, 7);
    let record = run
        .result
        .find(&TrialKey {
            tuner: "random-search".into(),
            benchmark: "gemm".into(),
            architecture: "RTX Titan".into(),
            rep: 0,
        })
        .expect("gemm/RTX Titan trial present");
    assert_eq!(record.best_ms, direct.best().and_then(|b| b.time_ms()));
    let t4 = bat::core::t4::T4Results::from_run(&direct, problem.space().names());
    assert_eq!(record.history.as_ref(), Some(&t4));
}

#[test]
fn campaigns_are_deterministic_and_resumable() {
    let spec = ExperimentSpec {
        tuners: Selector::Subset(vec!["simulated-annealing".into()]),
        benchmarks: Selector::Subset(vec!["gemm".into(), "hotspot".into()]),
        architectures: Selector::Subset(vec!["RTX Titan".into()]),
        budget: 80,
        repetitions: 1,
        seed: 11,
        record: RecordLevel::Curve,
        ..ExperimentSpec::new("suite-determinism")
    };
    let a = run_campaign(&spec).expect("first run");
    let b = run_campaign_serial(&spec).expect("second run");
    assert_eq!(
        a.result.to_json(),
        b.result.to_json(),
        "campaigns must be bit-reproducible across thread counts"
    );
    let mut partial = a.result.clone();
    partial.trials.truncate(1);
    let resumed = resume_campaign(&spec, &partial).expect("resume");
    assert_eq!(resumed.reused, 1);
    assert_eq!(resumed.result.to_json(), a.result.to_json());
}

#[test]
fn tuning_is_deterministic_across_identical_sessions() {
    let arch = GpuArch::rtx_titan();
    for name in ["gemm", "hotspot"] {
        let p1 = bat::kernels::benchmark(name, arch.clone()).unwrap();
        let p2 = bat::kernels::benchmark(name, arch.clone()).unwrap();
        let e1 = Evaluator::with_protocol(&p1, Protocol::default()).with_budget(80);
        let e2 = Evaluator::with_protocol(&p2, Protocol::default()).with_budget(80);
        let r1 = SimulatedAnnealing::default().tune(&e1, 11);
        let r2 = SimulatedAnnealing::default().tune(&e2, 11);
        assert_eq!(r1, r2, "{name} must be bit-reproducible");
    }
}

#[test]
fn all_tuners_find_something_decent_on_nbody() {
    // N-body converges fast in the paper (90% at ~10 evals); with a 150-eval
    // budget every algorithm should be well past 60% of optimal. One
    // all-tuner campaign covers the whole sweep.
    let arch = GpuArch::rtx_3090();
    let problem = bat::kernels::benchmark("nbody", arch).unwrap();
    let landscape = Landscape::exhaustive(&problem);
    let t_opt = landscape.best().unwrap().time_ms.unwrap();
    let spec = ExperimentSpec {
        seed: 5,
        seed_policy: SeedPolicy::Sequential,
        tuners: Selector::All,
        benchmarks: Selector::Subset(vec!["nbody".into()]),
        architectures: Selector::Subset(vec!["RTX 3090".into()]),
        budget: 150,
        repetitions: 1,
        record: RecordLevel::Curve,
        ..ExperimentSpec::new("suite-nbody")
    };
    let run = run_campaign(&spec).expect("campaign runs");
    assert_eq!(run.result.trials.len(), default_tuners().len());
    for t in &run.result.trials {
        let best = t
            .best_ms
            .unwrap_or_else(|| panic!("{} found nothing", t.tuner));
        assert!(
            t_opt / best > 0.6,
            "{}: reached only {:.1}% of optimal",
            t.tuner,
            t_opt / best * 100.0
        );
    }
}

#[test]
fn evaluator_cache_and_budget_interact_correctly() {
    let problem = bat::kernels::benchmark("pnpoly", GpuArch::rtx_3060()).unwrap();
    let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(10);
    // Evaluate the same config 10 times: budget drains, cache holds one.
    for _ in 0..10 {
        let m = evaluator.evaluate_index(0).unwrap().unwrap();
        assert!(m.time_ms > 0.0);
    }
    assert!(evaluator.evaluate_index(0).is_none(), "budget exhausted");
    assert_eq!(evaluator.distinct_evals(), 1);
    assert_eq!(evaluator.evals_used(), 10);
}

#[test]
fn launch_failures_surface_as_eval_failures_not_panics() {
    let problem = bat::kernels::benchmark("dedisp", GpuArch::rtx_2080_ti()).unwrap();
    // 512 × 128 threads: restriction-valid, launch-invalid everywhere.
    let cfg = [512, 128, 2, 2, 0, 0, 8, 0];
    assert!(problem.space().is_valid(&cfg));
    let evaluator = Evaluator::with_protocol(&problem, Protocol::default());
    match evaluator.evaluate_config(&cfg).unwrap() {
        Err(EvalFailure::Launch(msg)) => assert!(msg.contains("threads")),
        other => panic!("expected launch failure, got {other:?}"),
    }
}

#[test]
fn generated_sources_reflect_configs_for_all_kernels() {
    for name in bat::kernels::BENCHMARK_NAMES {
        let spec = bat::kernels::kernel_by_name(name).unwrap();
        let space = spec.build_space();
        let cfg = space.config_at(space.cardinality() / 2);
        let src = spec.source(&cfg);
        assert!(src.contains("__global__"), "{name} source has no kernel");
        assert!(src.contains("#define"), "{name} source has no parameters");
    }
}
