//! Functional verification across kernels: for randomly-drawn valid
//! configurations, the config-parameterized executors must produce the same
//! results as the naive references (the "verify output" code path of a real
//! tuner), on scaled-down problem instances.

use bat::kernels::convolution::exec as conv_exec;
use bat::kernels::convolution::ConvolutionConfig;
use bat::kernels::dedisp::exec as dedisp_exec;
use bat::kernels::dedisp::DedispConfig;
use bat::kernels::expdist::exec as expdist_exec;
use bat::kernels::expdist::ExpdistConfig;
use bat::kernels::gemm::exec as gemm_exec;
use bat::kernels::gemm::GemmConfig;
use bat::kernels::hotspot::exec as hotspot_exec;
use bat::kernels::hotspot::HotspotConfig;
use bat::kernels::nbody::exec as nbody_exec;
use bat::kernels::nbody::NbodyConfig;
use bat::kernels::pnpoly::exec as pnpoly_exec;
use bat::kernels::pnpoly::PnpolyConfig;
use bat::space::sample_valid_indices_distinct;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn gemm_random_configs_match_reference() {
    let spec = bat::kernels::GemmKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(100);
    let idxs = sample_valid_indices_distinct(&space, 8, &mut rng, 2_000_000).unwrap();
    let (m, n, k) = (128usize, 128usize, 64usize);
    let a = gemm_exec::test_matrix(m, k, 1);
    let b = gemm_exec::test_matrix(k, n, 2);
    let c0 = gemm_exec::test_matrix(m, n, 3);
    let reference = gemm_exec::gemm_reference(m, n, k, &a, &b, &c0, 1.0, 0.5);
    for idx in idxs {
        let cfg = GemmConfig::from_values(&space.config_at(idx));
        let out = gemm_exec::gemm_tiled(&cfg, m, n, k, &a, &b, &c0, 1.0, 0.5);
        let diff = gemm_exec::max_rel_diff(&reference, &out);
        assert!(diff < 1e-4, "config {cfg:?}: {diff}");
    }
}

#[test]
fn nbody_random_configs_match_reference() {
    let spec = bat::kernels::NbodyKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(200);
    let idxs = sample_valid_indices_distinct(&space, 8, &mut rng, 2_000_000).unwrap();
    // n divisible by every block_size × outer_unroll combination (≤ 4096).
    let bodies = nbody_exec::BodiesSoA::random(4096, 5);
    let reference = nbody_exec::nbody_reference(&bodies);
    for idx in idxs {
        let cfg = NbodyConfig::from_values(&space.config_at(idx));
        let out = nbody_exec::nbody_tiled(&cfg, &bodies);
        let diff = nbody_exec::max_acc_diff(&reference, &out);
        assert!(diff < 5e-3, "config {cfg:?}: {diff}");
    }
}

#[test]
fn hotspot_random_configs_match_reference() {
    let spec = bat::kernels::HotspotKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(300);
    let coeffs = hotspot_exec::HotspotCoeffs::default();
    let (w, h) = (64usize, 64usize);
    let temp = hotspot_exec::random_field(w, h, 70.0, 90.0, 1);
    let power = hotspot_exec::random_field(w, h, 0.0, 1.0, 2);
    let mut checked = 0;
    // 240 draws keeps ≥3 small-tile configurations with comfortable margin
    // (the filter below passes ~4% of valid configurations).
    let idxs = sample_valid_indices_distinct(&space, 240, &mut rng, 5_000_000).unwrap();
    for idx in idxs {
        let cfg = HotspotConfig::from_values(&space.config_at(idx));
        // Keep functional runs small: skip configurations whose tiles dwarf
        // the 64×64 test grid or need huge step counts.
        if cfg.out_x() > 64 || cfg.out_y() > 64 || cfg.temporal_tiling_factor > 5 {
            continue;
        }
        let steps = (cfg.temporal_tiling_factor * 2) as usize;
        let reference = hotspot_exec::hotspot_reference(&temp, &power, w, h, steps, &coeffs);
        let out = hotspot_exec::hotspot_tiled(&cfg, &temp, &power, w, h, steps, &coeffs);
        let diff = reference
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "config {cfg:?}: {diff}");
        checked += 1;
        if checked >= 6 {
            break;
        }
    }
    assert!(checked >= 3, "too few hotspot configs exercised");
}

#[test]
fn pnpoly_random_configs_match_reference() {
    let spec = bat::kernels::PnpolyKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(400);
    let poly = pnpoly_exec::star_polygon(60, 9);
    let pts = pnpoly_exec::query_points(3_000, 10);
    let reference = pnpoly_exec::pnpoly_reference(&pts, &poly);
    let idxs = sample_valid_indices_distinct(&space, 10, &mut rng, 100_000).unwrap();
    for idx in idxs {
        let cfg = PnpolyConfig::from_values(&space.config_at(idx));
        let out = pnpoly_exec::pnpoly_tiled(&cfg, &pts, &poly);
        assert_eq!(out, reference, "config {cfg:?}");
    }
}

#[test]
fn convolution_random_configs_match_reference() {
    let spec = bat::kernels::ConvolutionKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(500);
    let (w, h, fw, fh) = (96usize, 64usize, 9usize, 9usize);
    let input = conv_exec::random_buffer((w + fw - 1) * (h + fh - 1), 1);
    let filter = conv_exec::random_buffer(fw * fh, 2);
    let reference = conv_exec::convolution_reference(w, h, fw, fh, &input, &filter);
    let idxs = sample_valid_indices_distinct(&space, 8, &mut rng, 1_000_000).unwrap();
    for idx in idxs {
        let cfg = ConvolutionConfig::from_values(&space.config_at(idx));
        let out = conv_exec::convolution_tiled(&cfg, w, h, fw, fh, &input, &filter);
        let diff = reference
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "config {cfg:?}: {diff}");
    }
}

#[test]
fn expdist_random_configs_match_reference() {
    let spec = bat::kernels::ExpdistKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(600);
    let t = expdist_exec::random_particle(200, 1);
    let m = expdist_exec::random_particle(160, 2);
    let reference = expdist_exec::expdist_reference(&t, &m);
    let idxs = sample_valid_indices_distinct(&space, 8, &mut rng, 10_000_000).unwrap();
    for idx in idxs {
        let cfg = ExpdistConfig::from_values(&space.config_at(idx));
        let out = expdist_exec::expdist_tiled(&cfg, &t, &m);
        let rel = (reference - out).abs() / reference.abs();
        assert!(rel < 1e-9, "config {cfg:?}: {rel}");
    }
}

#[test]
fn dedisp_random_configs_match_reference() {
    let spec = bat::kernels::DedispKernel::default();
    let space = bat::kernels::KernelSpec::build_space(&spec);
    let mut rng = StdRng::seed_from_u64(700);
    let (channels, dms, out_samples, max_delay) = (32usize, 24usize, 80usize, 20usize);
    let delays = dedisp_exec::DelayTable::arts_like(dms, channels, max_delay);
    let mut fb = dedisp_exec::Filterbank::noise(channels, out_samples + max_delay, 3);
    fb.inject_pulse(&delays, 12, 40, 30.0);
    let reference = dedisp_exec::dedisp_reference(&fb, &delays, dms, out_samples);
    let idxs = sample_valid_indices_distinct(&space, 10, &mut rng, 10_000_000).unwrap();
    for idx in idxs {
        let cfg = DedispConfig::from_values(&space.config_at(idx));
        let out = dedisp_exec::dedisp_tiled(&cfg, &fb, &delays, dms, out_samples);
        assert_eq!(out, reference, "config {cfg:?}");
    }
}
