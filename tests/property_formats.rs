//! Property-based tests for the interchange formats (T1 benchmark specs,
//! T4 result documents) and the warm-start tuner wrapper.

use bat::core::t4::{T4Invalidity, T4Results};
use bat::kernels::t1::{
    space_from_t1, T1ConfigurationSpace, T1Document, T1General, T1KernelSpecification, T1Parameter,
    T1_SCHEMA_VERSION,
};
use bat::prelude::*;
use bat::space::Param;
use bat::tuners::WarmStartTuner;
use proptest::prelude::*;

/// Strategy: 1–4 parameters with 1–8 distinct values each.
fn arb_parameters() -> impl Strategy<Value = Vec<T1Parameter>> {
    proptest::collection::vec(1usize..8, 1..4).prop_map(|radices| {
        radices
            .iter()
            .enumerate()
            .map(|(i, &r)| T1Parameter {
                name: format!("p{i}"),
                ty: "int".to_string(),
                values: (0..r as i64).map(|v| 3 * v + 1).collect(),
            })
            .collect()
    })
}

fn doc_from(params: Vec<T1Parameter>, constraints: Vec<String>) -> T1Document {
    T1Document {
        general: T1General {
            benchmark_name: "prop".into(),
            schema_version: T1_SCHEMA_VERSION.into(),
        },
        configuration_space: T1ConfigurationSpace {
            tuning_parameters: params,
            constraints,
        },
        kernel_specification: T1KernelSpecification {
            language: "CUDA".into(),
            kernel_name: "prop".into(),
        },
    }
}

/// Strategy: a run over a fixed 2-parameter space with a mixed bag of
/// outcomes.
fn arb_run() -> impl Strategy<Value = TuningRun> {
    proptest::collection::vec((0u64..12, 0usize..3, 0.01f64..100.0), 0..25).prop_map(|trials| {
        let mut run = TuningRun::new("prop", "SIM", "prop-tuner", 0);
        for (i, (index, kind, t)) in trials.into_iter().enumerate() {
            let outcome = match kind {
                0 => Ok(Measurement::from_samples(vec![t, t * 1.1, t * 0.9])),
                1 => Err(EvalFailure::Restricted),
                _ => Err(EvalFailure::Launch("prop".into())),
            };
            run.push(bat::core::Trial {
                eval: i as u64 + 1,
                index,
                config: vec![index as i64 % 4, index as i64 / 4],
                outcome,
            });
        }
        run
    })
}

proptest! {
    /// T1 documents survive JSON round-trips and rebuild a space with the
    /// exact cartesian cardinality (product of value-list lengths).
    #[test]
    fn t1_round_trip_and_cardinality(params in arb_parameters()) {
        let expected: u64 = params.iter().map(|p| p.values.len() as u64).product();
        let doc = doc_from(params, vec![]);
        let parsed = T1Document::from_json(&doc.to_json()).unwrap();
        prop_assert_eq!(&parsed, &doc);
        let space = space_from_t1(&parsed).unwrap();
        prop_assert_eq!(space.cardinality(), expected);
    }

    /// A constraint never *increases* the valid count, and the count
    /// matches brute-force re-evaluation.
    #[test]
    fn t1_constraints_only_shrink(params in arb_parameters()) {
        let free = space_from_t1(&doc_from(params.clone(), vec![])).unwrap();
        let constrained = space_from_t1(&doc_from(
            params,
            vec!["p0 % 2 == 1".to_string()],
        ))
        .unwrap();
        prop_assert!(constrained.count_valid() <= free.count_valid());
        // Brute force agreement.
        let brute = (0..constrained.cardinality())
            .filter(|&i| constrained.is_valid_index(i))
            .count() as u64;
        prop_assert_eq!(constrained.count_valid(), brute);
    }

    /// T4 conversion preserves trial count, order, and the outcome
    /// taxonomy; JSON round-trips losslessly.
    #[test]
    fn t4_round_trip_preserves_everything(run in arb_run()) {
        let names = vec!["a".to_string(), "b".to_string()];
        let t4 = T4Results::from_run(&run, &names);
        prop_assert_eq!(t4.results.len(), run.trials.len());
        for (r, t) in t4.results.iter().zip(&run.trials) {
            match &t.outcome {
                Ok(m) => {
                    prop_assert!(r.is_valid());
                    prop_assert_eq!(r.time_ms(), Some(m.time_ms));
                    prop_assert_eq!(&r.times, &m.samples);
                }
                Err(EvalFailure::Restricted) => {
                    prop_assert_eq!(r.invalidity, Some(T4Invalidity::Constraints));
                }
                // Launch failures and every fault-model outcome (the kernel
                // compiled but died on the target) map to Runtime.
                Err(
                    EvalFailure::Launch(_)
                    | EvalFailure::Transient(_)
                    | EvalFailure::Timeout
                    | EvalFailure::Crash(_),
                ) => {
                    prop_assert_eq!(r.invalidity, Some(T4Invalidity::Runtime));
                }
            }
            prop_assert_eq!(r.configuration["a"], t.config[0]);
            prop_assert_eq!(r.configuration["b"], t.config[1]);
        }
        let back = T4Results::from_json(&t4.to_json()).unwrap();
        prop_assert_eq!(back, t4);
    }

    /// T4's best() agrees with the run's own best().
    #[test]
    fn t4_best_matches_run_best(run in arb_run()) {
        let names = vec!["a".to_string(), "b".to_string()];
        let t4 = T4Results::from_run(&run, &names);
        match (run.best(), t4.best()) {
            (Some(rb), Some(tb)) => {
                prop_assert_eq!(tb.time_ms(), rb.time_ms());
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "best mismatch: {a:?} vs {}", b.is_some()),
        }
    }

    /// WarmStartTuner always respects the budget exactly, for any seed
    /// list (representable or not).
    #[test]
    fn warmstart_budget_exact(
        budget in 1u64..50,
        n_seeds in 0usize..8,
        salt in 0i64..100,
    ) {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .param(Param::int_range("y", 0, 9))
            .build()
            .unwrap();
        let p = bat::core::SyntheticProblem::new("ws", "sim", space, |v| {
            Ok(1.0 + (v[0] + v[1]) as f64)
        });
        // Mix of valid and unrepresentable seeds.
        let seeds: Vec<Vec<i64>> = (0..n_seeds)
            .map(|i| vec![(salt + i as i64) % 13, (salt * 3 + i as i64) % 10])
            .collect();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(budget);
        let run = WarmStartTuner::new(seeds, RandomSearch).tune(&eval, 5);
        prop_assert_eq!(run.trials.len() as u64, budget);
        // Evaluation counters are contiguous from 1.
        for (i, t) in run.trials.iter().enumerate() {
            prop_assert_eq!(t.eval, i as u64 + 1);
        }
    }
}
