//! Property tests for the persistent worker pool behind compat-rayon.
//!
//! The pool replaced spawn-per-call scoped threads; these tests pin the
//! contract the evaluator depends on: order-preserving terminals are
//! bit-identical to their serial equivalents at *any* thread count and
//! input size, nested parallel calls serialize instead of deadlocking or
//! over-spawning, and a panic on any participant propagates to the caller.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::with_thread_limit;

/// A non-trivial, order-sensitive map: mixes the element value with its
/// position so any misrouted slot or reordering changes the output.
fn scramble(i: u64, x: u64) -> u64 {
    let mut h = x ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 27)
}

proptest! {
    /// `collect` over a materialized Vec is bit-identical to the serial
    /// map at every thread count, including counts far above the host's
    /// core count (the pool grows parked workers on demand).
    #[test]
    fn vec_collect_matches_serial_at_any_thread_count(
        items in proptest::collection::vec(0u64..u64::MAX, 0..300),
        threads in 1usize..9,
    ) {
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| scramble(i as u64, x))
            .collect();
        let parallel: Vec<u64> = with_thread_limit(threads, || {
            items
                .clone()
                .into_par_iter()
                .enumerate()
                .map(|(i, x)| scramble(i as u64, x))
                .collect()
        });
        prop_assert_eq!(parallel, serial);
    }

    /// The lazy range pipeline (`(0..n).into_par_iter()`) sums exactly the
    /// serial total at every thread count and range length.
    #[test]
    fn range_sum_matches_serial_at_any_thread_count(
        n in 0u64..50_000,
        salt in 0u64..u64::MAX,
        threads in 1usize..9,
    ) {
        let serial: u64 = (0..n).map(|i| scramble(i, salt)).fold(0, u64::wrapping_add);
        let parallel: u64 = with_thread_limit(threads, || {
            (0..n)
                .into_par_iter()
                .map(|i| scramble(i, salt))
                .collect::<Vec<u64>>()
                .into_iter()
                .fold(0, u64::wrapping_add)
        });
        prop_assert_eq!(parallel, serial);
    }

    /// A parallel call issued from inside a parallel region runs serially
    /// (no deadlock, no over-subscription) and still produces the serial
    /// result — the evaluator relies on this when a tuner's batch callback
    /// itself fans out.
    #[test]
    fn nested_parallel_calls_serialize(
        outer in 1usize..40,
        inner in 0u64..200,
        threads in 2usize..6,
    ) {
        let expected: Vec<u64> = (0..outer as u64)
            .map(|o| (0..inner).map(|i| scramble(i, o)).fold(0, u64::wrapping_add))
            .collect();
        let got: Vec<u64> = with_thread_limit(threads, || {
            (0..outer as u64)
                .into_par_iter()
                .map(|o| {
                    // Nested terminal: must run in place on this worker.
                    (0..inner)
                        .into_par_iter()
                        .map(|i| scramble(i, o))
                        .collect::<Vec<u64>>()
                        .into_iter()
                        .fold(0, u64::wrapping_add)
                })
                .collect()
        });
        prop_assert_eq!(got, expected);
    }

    /// A panic in any work item propagates to the submitting caller as a
    /// panic (never a hang, never silent loss), at any thread count and
    /// panic position.
    #[test]
    fn worker_panic_propagates(
        n in 2usize..120,
        at in 0usize..120,
        threads in 1usize..6,
    ) {
        let at = at % n;
        let result = std::panic::catch_unwind(|| {
            with_thread_limit(threads, || {
                (0..n as u64)
                    .into_par_iter()
                    .map(|i| {
                        assert!(i != at as u64, "injected failure");
                        i
                    })
                    .collect::<Vec<u64>>()
            })
        });
        prop_assert!(result.is_err(), "panic at item {at} was swallowed");
    }
}

/// After a panicking call, the pool stays usable: subsequent parallel
/// calls on the same threads still complete and produce serial-identical
/// results.
#[test]
fn pool_survives_worker_panics() {
    for round in 0..3u64 {
        let boom = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                (0..64u64)
                    .into_par_iter()
                    .map(|i| {
                        assert!(i != 17, "injected failure");
                        i
                    })
                    .collect::<Vec<u64>>()
            })
        });
        assert!(boom.is_err());
        let ok: Vec<u64> = with_thread_limit(4, || {
            (0..64u64)
                .into_par_iter()
                .map(|i| scramble(i, round))
                .collect()
        });
        let expected: Vec<u64> = (0..64u64).map(|i| scramble(i, round)).collect();
        assert_eq!(ok, expected);
    }
}
