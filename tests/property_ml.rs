//! Property-based tests for the ML substrate behind the model-based
//! tuners: dense Cholesky, Gaussian-process posteriors, random forests and
//! acquisition functions.

use bat::ml::linalg::{dot, Cholesky, SymMatrix};
use bat::ml::stats::{norm_cdf, norm_pdf};
use bat::ml::{Dataset, ForestParams, GaussianProcess, GpParams, KernelKind, RandomForest};
use bat::tuners::Acquisition;
use proptest::prelude::*;

/// Random SPD matrix via A = B Bᵀ + (n + jitter)·I.
fn arb_spd(max_n: usize) -> impl Strategy<Value = SymMatrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |b| {
            let mut a = SymMatrix::zeros(n);
            for i in 0..n {
                for j in 0..=i {
                    let v = dot(&b[i * n..(i + 1) * n], &b[j * n..(j + 1) * n]);
                    a.set(i, j, v);
                }
            }
            a.add_diagonal(n as f64 + 0.5);
            a
        })
    })
}

proptest! {
    /// `L Lᵀ` reconstructs the input to numerical precision.
    #[test]
    fn cholesky_reconstruction(a in arb_spd(12)) {
        let ch = Cholesky::factor(&a).expect("SPD by construction");
        let n = a.n();
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += ch.l(i, k) * ch.l(j, k);
                }
                prop_assert!((s - a.get(i, j)).abs() < 1e-8 * (1.0 + a.get(i, j).abs()));
            }
        }
    }

    /// Solving then multiplying is the identity.
    #[test]
    fn cholesky_solve_roundtrip(a in arb_spd(10), seed in 0u64..1000) {
        let n = a.n();
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed.wrapping_add(i as u64) % 17) as f64 - 8.0) / 4.0)
            .collect();
        let b = a.matvec(&x_true);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    /// log det from the factor is finite and consistent with the
    /// diagonal-dominance bounds of the construction.
    #[test]
    fn cholesky_log_det_finite(a in arb_spd(10)) {
        let ch = Cholesky::factor(&a).unwrap();
        prop_assert!(ch.log_det().is_finite());
        // A ⪰ 0.5·I by construction, so log det ≥ n·log(0.5).
        prop_assert!(ch.log_det() >= a.n() as f64 * 0.5f64.ln() - 1e-9);
    }

    /// GP posterior mean at a training point approaches the target as the
    /// noise floor shrinks; posterior variance is non-negative everywhere.
    #[test]
    fn gp_posterior_sanity(
        ys in proptest::collection::vec(-5.0f64..5.0, 2..12),
        query in -2.0f64..12.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let gp = GaussianProcess::fit(
            &rows,
            &ys,
            &GpParams::fixed(KernelKind::Matern52, 0.3, 1e-8),
        );
        for (r, t) in rows.iter().zip(&ys) {
            let p = gp.predict(r);
            prop_assert!((p.mean - t).abs() < 0.05 + 0.02 * t.abs(), "{} vs {t}", p.mean);
            prop_assert!(p.variance >= 0.0);
        }
        prop_assert!(gp.predict(&[query]).variance >= 0.0);
    }

    /// The grid fit never selects hyperparameters with a lower LML than a
    /// fixed fit at any grid point (it *is* the arg-max over the grid).
    #[test]
    fn gp_grid_fit_is_argmax(seed in 0u64..50) {
        let rows: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..15)
            .map(|i| ((i as u64 * 2654435761u64.wrapping_add(seed)) % 97) as f64 / 10.0)
            .collect();
        let params = GpParams::default();
        let fitted = GaussianProcess::fit(&rows, &ys, &params);
        let single = GaussianProcess::fit(
            &rows,
            &ys,
            &GpParams::fixed(params.kernel, params.lengthscales[0], params.noises[0]),
        );
        prop_assert!(
            fitted.log_marginal_likelihood() >= single.log_marginal_likelihood() - 1e-9
        );
    }

    /// Forest predictions are convex combinations of tree predictions:
    /// mean within [min, max] of training targets for in-range queries,
    /// variance non-negative, determinism per seed.
    #[test]
    fn forest_prediction_bounds(
        ys in proptest::collection::vec(0.1f64..100.0, 6..40),
        seed in 0u64..100,
    ) {
        let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let names = vec!["x".to_string()];
        let data = Dataset::new(&rows, ys.clone(), names);
        let params = ForestParams { seed, n_trees: 12, ..ForestParams::default() };
        let forest = RandomForest::fit(&data, &params);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for r in &rows {
            let p = forest.predict(r);
            prop_assert!(p.mean >= lo - 1e-9 && p.mean <= hi + 1e-9);
            prop_assert!(p.variance >= 0.0);
        }
        let again = RandomForest::fit(&data, &params);
        for r in &rows {
            prop_assert_eq!(forest.predict(r), again.predict(r));
        }
    }

    /// Acquisition invariants: EI ≥ 0 and EI ≥ plain improvement;
    /// PI ∈ [0, 1]; all three improve (weakly) as the mean decreases.
    #[test]
    fn acquisition_invariants(
        mean in -10.0f64..10.0,
        std in 0.0f64..5.0,
        best in -10.0f64..10.0,
    ) {
        let ei = Acquisition::ExpectedImprovement.score(mean, std, best);
        prop_assert!(ei >= -1e-12);
        prop_assert!(ei >= (best - mean).max(0.0) - 1e-9);
        let pi = Acquisition::ProbabilityOfImprovement.score(mean, std, best);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&pi));

        let lower = mean - 1.0;
        for acq in [
            Acquisition::ExpectedImprovement,
            Acquisition::ProbabilityOfImprovement,
            Acquisition::LowerConfidenceBound { beta: 1.5 },
        ] {
            prop_assert!(
                acq.score(lower, std, best) >= acq.score(mean, std, best) - 1e-9,
                "{acq:?} must not prefer a worse mean"
            );
        }
    }

    /// Normal CDF/PDF consistency: CDF is the integral of the PDF.
    #[test]
    fn cdf_matches_integrated_pdf(x in -4.0f64..4.0) {
        // Trapezoid from -8 to x.
        let n = 2000;
        let h = (x + 8.0) / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let t = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * norm_pdf(t);
        }
        prop_assert!((s * h - norm_cdf(x)).abs() < 1e-4);
    }
}
