//! # BAT-rs
//!
//! A Rust reproduction of **BAT 2.0** — *"Towards a Benchmarking Suite for
//! Kernel Tuners"* (Tørring et al., 2023): seven tunable GPU benchmark
//! kernels behind one problem interface, a simulated four-GPU testbed,
//! fourteen tuning algorithms (including the GP-Bayesian, TPE and
//! random-forest families of the Kernel Tuner / Optuna / SMAC3 ecosystems),
//! and the paper's five landscape analyses plus tuner-comparison and
//! dynamic-autotuning studies.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`space`] — parameter spaces, restriction expressions, sampling;
//! * [`gpusim`] — the architecture models / occupancy / timing substrate;
//! * [`core`] — the [`TuningProblem`](core::TuningProblem) interface,
//!   evaluator and run records;
//! * [`kernels`] — GEMM, N-body, Hotspot, Pnpoly, Convolution, Expdist,
//!   Dedispersion;
//! * [`ml`] — gradient-boosted trees + permutation feature importance;
//! * [`tuners`] — random/local/evolutionary/surrogate optimizers;
//! * [`moo`] — multi-objective (time × energy) tuning: Pareto archive,
//!   NSGA-II, scalarization adapters;
//! * [`analysis`] — distributions, convergence, FFG centrality, speedups,
//!   portability, PFI, space reduction;
//! * [`harness`] — declarative experiment orchestration: campaign specs in,
//!   deterministic, resumable result artifacts out.
//!
//! ## Quickstart
//!
//! ```
//! use bat::prelude::*;
//!
//! // Bind the GEMM benchmark to a simulated RTX 3090 and tune it.
//! let problem = bat::kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
//! let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(200);
//! let run = RandomSearch.tune(&evaluator, 42);
//! let best = run.best().expect("found a valid configuration");
//! println!("best GEMM config: {:?} at {:.3} ms", best.config, best.time_ms().unwrap());
//! ```

pub use bat_analysis as analysis;
pub use bat_cache as cache;
pub use bat_core as core;
pub use bat_gpusim as gpusim;
pub use bat_harness as harness;
pub use bat_kernels as kernels;
pub use bat_ml as ml;
pub use bat_moo as moo;
pub use bat_obs as obs;
pub use bat_space as space;
pub use bat_tuners as tuners;

/// The most common imports in one place.
pub mod prelude {
    pub use bat_analysis::{
        aggregate_ranks, compare_tuners, max_speedup_over_median, portability_matrix,
        proportion_of_centrality, random_search_convergence, ComparisonSettings, FitnessFlowGraph,
        Landscape, OnlinePolicy, OnlineSimulation, PerformanceDistribution,
    };
    pub use bat_core::{
        EvalFailure, Evaluator, Measurement, Protocol, RetryPolicy, TuningProblem, TuningRun,
    };
    pub use bat_gpusim::{FaultModel, GpuArch, KernelModel, LaunchError};
    pub use bat_harness::{
        resume_campaign, run_campaign, run_campaign_serial, CampaignResult, CampaignSummary,
        ExperimentSpec, SeedPolicy, Selector, TrialRecord,
    };
    pub use bat_kernels::{GpuBenchmark, KernelSpec};
    pub use bat_moo::{Nsga2, ParetoArchive, ParetoPoint, Scalarization, Scalarized};
    pub use bat_space::{ConfigSpace, Neighborhood, Param};
    pub use bat_tuners::{
        Acquisition, BasinHopping, BayesianOptimization, DifferentialEvolution, GeneticAlgorithm,
        IteratedLocalSearch, LocalSearch, ParticleSwarm, RandomSearch, SimulatedAnnealing,
        SmacTuner, StepCtx, StepTuner, SurrogateTuner, Told, Tpe, TransferDatabase, Tuner,
        WarmStartTuner,
    };
}
