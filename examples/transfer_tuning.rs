//! Transfer tuning: turn the paper's portability finding into a technique.
//!
//! Fig. 5 shows that optimal configurations transfer between GPUs at
//! 58.5–99.9% of optimal — too lossy to reuse blindly, but an excellent
//! *starting point*. This example tunes N-body for the RTX Titan three
//! ways: cold random search, random search warm-started with the optima of
//! the other three GPUs, and the transferred configurations alone (the
//! paper's Fig. 5 protocol).
//!
//! ```sh
//! cargo run --release --example transfer_tuning
//! ```

use bat::prelude::*;
use bat::tuners::WarmStartTuner;

fn main() {
    let target_arch = GpuArch::rtx_titan();
    let sources = [
        GpuArch::rtx_2080_ti(),
        GpuArch::rtx_3060(),
        GpuArch::rtx_3090(),
    ];

    // The paper's Fig. 5 protocol: exhaustive optimum per architecture.
    println!("finding per-GPU optima for nbody (exhaustive search)...\n");
    let seeds: Vec<Vec<i64>> = sources
        .iter()
        .map(|arch| {
            let p = bat::kernels::benchmark("nbody", arch.clone()).unwrap();
            let l = Landscape::exhaustive(&p);
            let best = l.best().unwrap();
            let cfg = p.space().config_at(best.index);
            println!(
                "  optimum on {:<12} {:?} at {:.4} ms",
                p.platform(),
                cfg,
                best.time_ms.unwrap()
            );
            cfg
        })
        .collect();

    let target = bat::kernels::benchmark("nbody", target_arch).unwrap();
    let target_landscape = Landscape::exhaustive(&target);
    let t_opt = target_landscape.best().unwrap().time_ms.unwrap();
    println!("\ntarget: {} (optimum {:.4} ms)", target.platform(), t_opt);

    // The transferred configurations alone — the Fig. 5 row for this GPU.
    println!("\ntransferred as-is (the paper's portability measurement):");
    let probe = Evaluator::with_protocol(&target, Protocol::noiseless());
    for (src, cfg) in sources.iter().zip(&seeds) {
        let rel = probe
            .evaluate_config(cfg)
            .expect("no budget set")
            .map(|m| t_opt / m.time_ms)
            .unwrap_or(0.0);
        println!("  from {:<12} {:>5.1}% of optimal", src.name, rel * 100.0);
    }

    // Cold vs warm tuning at small budgets: transfer seeds buy evaluations.
    println!("\nmedian best (of 9 repeats) after N evaluations, % of optimal:");
    println!("{:<8} {:>12} {:>12}", "budget", "cold", "warm-start");
    for budget in [4u64, 8, 16, 32, 64] {
        let median = |warm: bool| -> f64 {
            let mut bests: Vec<f64> = (0..9)
                .map(|seed| {
                    let eval =
                        Evaluator::with_protocol(&target, Protocol::default()).with_budget(budget);
                    let run = if warm {
                        WarmStartTuner::new(seeds.clone(), RandomSearch).tune(&eval, seed)
                    } else {
                        RandomSearch.tune(&eval, seed)
                    };
                    run.best().map_or(f64::INFINITY, |b| b.time_ms().unwrap())
                })
                .collect();
            bests.sort_by(|a, b| a.total_cmp(b));
            bests[bests.len() / 2]
        };
        println!(
            "{:<8} {:>11.1}% {:>11.1}%",
            budget,
            t_opt / median(false) * 100.0,
            t_opt / median(true) * 100.0
        );
    }

    println!(
        "\nLesson: per-architecture tuning is still required for the last \
         percents (the paper's conclusion), but transferred optima are a \
         near-free initialization that dominates cold starts at small budgets."
    );
}
