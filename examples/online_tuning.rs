//! Dynamic (online) autotuning: does tuning during the application run
//! pay for itself? — the KTT-style study (the paper's reference [7]).
//!
//! An application invokes the Expdist kernel thousands of times (the
//! microscopy particle-fusion registration loop calls it repeatedly). We
//! charge every explored configuration's real runtime against the
//! application's time-to-solution and compare three strategies: never
//! tune, tune-then-exploit with different budgets, and the oracle.
//!
//! ```sh
//! cargo run --release --example online_tuning
//! ```

use bat::prelude::*;

fn main() {
    let arch = GpuArch::rtx_2080_ti();
    let problem = bat::kernels::benchmark("expdist", arch).expect("expdist is in the registry");

    // Ground truth for the oracle row: the best of a 10 000-sample
    // landscape (the paper's §V protocol for expdist).
    let landscape = bat::analysis::sampled_valid(&problem, 10_000, 0, 100_000_000)
        .expect("expdist's valid space is easily sampled");
    let t_opt = landscape.best().unwrap().time_ms.unwrap();

    let invocations = 20_000;
    println!(
        "expdist on {}: application performs {invocations} kernel invocations",
        problem.platform()
    );
    println!("sampled optimum {t_opt:.4} ms/invocation\n");

    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12}",
        "strategy", "total (s)", "speedup", "vs oracle", "break-even"
    );

    // Baseline: the untuned application runs its hardcoded default.
    let static_sim = OnlineSimulation {
        invocations,
        policy: OnlinePolicy::StaticDefault,
        protocol: Protocol::default(),
    };
    let static_trace = static_sim.run(&problem, &RandomSearch, None, Some(t_opt), 0);
    println!(
        "{:<22} {:>14.1} {:>10.2} {:>12.3} {:>12}",
        "static default",
        static_trace.total_ms / 1000.0,
        1.0,
        static_trace.overhead_vs_oracle().unwrap(),
        "-"
    );

    // Tune-then-exploit at increasing tuning budgets.
    let tuner = IteratedLocalSearch::default();
    for tuning_budget in [50u64, 200, 1000, 5000] {
        let sim = OnlineSimulation {
            invocations,
            policy: OnlinePolicy::TuneThenExploit { tuning_budget },
            protocol: Protocol::default(),
        };
        let trace = sim.run(&problem, &tuner, None, Some(t_opt), 0);
        println!(
            "{:<22} {:>14.1} {:>10.2} {:>12.3} {:>12}",
            format!("tune {tuning_budget} evals"),
            trace.total_ms / 1000.0,
            trace.speedup_over_static(),
            trace.overhead_vs_oracle().unwrap(),
            trace
                .break_even()
                .map_or("never".to_string(), |b| format!("@{b}")),
        );
    }

    // Oracle: the optimal configuration from invocation 0.
    println!(
        "{:<22} {:>14.1} {:>10.2} {:>12.3} {:>12}",
        "oracle",
        t_opt * invocations as f64 / 1000.0,
        static_trace.default_ms / t_opt,
        1.0,
        "@1"
    );

    println!(
        "\nLesson: with enough invocations every tuning budget amortizes, but \
         over-tuning (5000 evals) delays the exploitation phase — the \
         dynamic-autotuning trade-off KTT navigates."
    );
}
