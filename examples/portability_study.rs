//! The paper's portability study (Fig. 5) in miniature: find per-GPU
//! optimal configurations and measure how they transfer between
//! architectures.
//!
//! ```sh
//! cargo run --release --example portability_study
//! ```

use bat::prelude::*;

fn main() {
    let bench = "nbody";
    let archs = GpuArch::paper_testbed();

    // Exhaust the landscape per architecture (nbody has 9 408 configs).
    let problems: Vec<GpuBenchmark> = archs
        .iter()
        .map(|a| bat::kernels::benchmark(bench, a.clone()).unwrap())
        .collect();
    let landscapes: Vec<Landscape> = problems.iter().map(|p| Landscape::exhaustive(p)).collect();

    for (p, l) in problems.iter().zip(&landscapes) {
        let best = l.best().unwrap();
        println!(
            "{:<12} optimum {:.4} ms with {:?}",
            p.platform(),
            best.time_ms.unwrap(),
            p.space().config_at(best.index)
        );
    }

    let refs: Vec<&dyn TuningProblem> = problems.iter().map(|p| p as &dyn TuningProblem).collect();
    let matrix = portability_matrix(&refs, &landscapes);

    println!("\nportability (% of column GPU's optimal performance):");
    print!("{:<14}", "tuned on \\ run on");
    for p in &matrix.platforms {
        print!("{p:>14}");
    }
    println!();
    for (r, row) in matrix.values.iter().enumerate() {
        print!("{:<14}", matrix.platforms[r]);
        for v in row {
            match v {
                Some(x) => print!("{:>13.1}%", x * 100.0),
                None => print!("{:>14}", "launch-fail"),
            }
        }
        println!();
    }
    println!(
        "\nworst transfer: {:.1}% of optimal — the paper's headline observation\n\
         (simply moving a tuned configuration between GPUs loses real performance).",
        matrix.worst_transfer().unwrap() * 100.0
    );
}
