//! Quickstart: tune one benchmark on one simulated GPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bat::prelude::*;

fn main() {
    // 1. Pick a benchmark and a target architecture. The suite ships the
    //    paper's seven kernels and four-GPU testbed.
    let arch = GpuArch::rtx_3090();
    let problem = bat::kernels::benchmark("gemm", arch).expect("gemm is in the registry");
    println!(
        "tuning {} on {} — {} configurations ({} restriction-valid)",
        problem.name(),
        problem.platform(),
        problem.space().cardinality(),
        problem.space().count_valid_factored(),
    );

    // 2. Wrap it in the measurement harness: 5 runs per configuration with
    //    1% deterministic noise, budget of 300 evaluations.
    let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(300);

    // 3. Run a tuner. Every algorithm implements the same `Tuner` trait.
    let run = IteratedLocalSearch::default().tune(&evaluator, 42);

    // 4. Inspect the result.
    let best = run.best().expect("ILS finds a valid configuration");
    println!(
        "evaluated {} configurations ({} valid), best = {:.4} ms:",
        run.trials.len(),
        run.successes(),
        best.time_ms().unwrap()
    );
    for (name, value) in problem.space().names().iter().zip(&best.config) {
        println!("    {name} = {value}");
    }

    // 5. The best-so-far curve is the series the paper plots in Fig. 2.
    let curve = run.best_so_far();
    for evals in [10, 50, 100, 300] {
        if let Some(Some(t)) = curve.get(evals - 1) {
            println!("after {evals:>4} evaluations: best {t:.4} ms");
        }
    }
}
