//! Landscape analysis of one benchmark: distribution shape (Fig. 1),
//! random-search convergence (Fig. 2), FFG proportion-of-centrality
//! (Fig. 3), max speedup (Fig. 4) and feature importance (Fig. 6).
//!
//! ```sh
//! cargo run --release --example search_space_analysis
//! ```

use bat::analysis::{
    default_gbdt_params, default_proportions, feature_importance, proportion_of_centrality,
    PageRankParams,
};
use bat::prelude::*;

fn main() {
    let arch = GpuArch::rtx_3090();
    let problem = bat::kernels::benchmark("pnpoly", arch).expect("pnpoly is in the registry");
    let landscape = Landscape::exhaustive(&problem);
    println!(
        "pnpoly on {}: {} configurations, {} launch-valid",
        problem.platform(),
        landscape.samples.len(),
        landscape.valid_count()
    );

    // Fig. 1: distribution centred on the median configuration.
    let dist = PerformanceDistribution::from_times(&landscape.times(), 16).unwrap();
    println!(
        "\ndistribution: worst {:.2}x .. best {:.2}x of median; {:.1}% within ±10% of median",
        dist.worst_rel,
        dist.best_rel,
        dist.central_mass * 100.0
    );

    // Fig. 4: max speedup over the median configuration.
    println!(
        "max speedup over median: {:.2}x",
        max_speedup_over_median(&landscape).unwrap()
    );

    // Fig. 2: random-search convergence (median of 100 repetitions).
    let times: Vec<Option<f64>> = landscape.samples.iter().map(|s| s.time_ms).collect();
    let curve = random_search_convergence(&times, 1_000, 100, 7);
    println!(
        "random search reaches 90% of optimal after {} evaluations",
        curve
            .evals_to_reach(0.9)
            .map_or("> 1000".to_string(), |e| e.to_string())
    );

    // Fig. 3: proportion of centrality (search difficulty).
    let ffg = FitnessFlowGraph::build(problem.space(), &landscape, Neighborhood::HammingAny);
    let centrality =
        proportion_of_centrality(&ffg, &default_proportions(), &PageRankParams::default());
    println!(
        "fitness flow graph: {} nodes, {} local minima; proportion of centrality at p=0: {:.3}",
        ffg.len(),
        centrality.n_minima,
        centrality.proportion_of_centrality[0]
    );

    // Fig. 6: which parameters matter?
    let fi = feature_importance(problem.space(), &landscape, &default_gbdt_params(), 3, 0)
        .expect("landscape is non-empty");
    println!("\nfeature importance (GBDT R² = {:.4}):", fi.r2);
    let mut ranked: Vec<(&String, &f64)> = fi
        .pfi
        .feature_names
        .iter()
        .zip(&fi.pfi.importances)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    for (name, imp) in ranked {
        println!("    {name:<18} {imp:.3}");
    }
    println!(
        "sum of importances: {:.3} (values > baseline R² indicate parameter interactions)",
        fi.pfi.total_importance()
    );
}
