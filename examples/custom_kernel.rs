//! Extending the suite: define a *new* tunable kernel against the shared
//! problem interface and tune it with stock tuners — the integration story
//! the paper's §I promises ("easy integration of new autotuners and
//! benchmarks by defining a shared problem interface").
//!
//! The example adds a tunable AXPY-like streaming kernel.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use std::sync::Arc;

use bat::kernels::GpuBenchmark;
use bat::prelude::*;
use bat::space::Param;

/// A tunable SAXPY: `y = a*x + y` over `n` elements.
struct SaxpyKernel {
    n: u64,
}

impl KernelSpec for SaxpyKernel {
    fn name(&self) -> &'static str {
        "saxpy"
    }

    fn build_space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::pow2("block_size", 32, 1024))
            .param(Param::new("elements_per_thread", vec![1, 2, 4, 8, 16]))
            .param(Param::new("vector_width", vec![1, 2, 4]))
            // A thread's elements are loaded vector_width at a time.
            .restrict("elements_per_thread % vector_width == 0")
            .build()
            .expect("saxpy space is well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let (block, ept, vw) = (config[0], config[1], config[2]);
        let grid = self.n.div_ceil((block * ept) as u64);
        let mut m = KernelModel::new("saxpy", grid, block as u32);
        m.flops_per_thread = 2.0 * ept as f64; // one FMA per element
        m.gmem_bytes_per_thread = 12.0 * ept as f64; // load x, load y, store y
        m.gmem_transactions_per_thread = 3.0 * ept as f64 / vw as f64;
        // Vectorized accesses stay coalesced; scalar strided ones degrade.
        m.coalescing = if vw >= 2 { 1.0 } else { 0.8 };
        m.int_ops_per_thread = ept as f64 / vw as f64 + 4.0;
        m.ilp = (ept as f64 / vw as f64).clamp(1.0, 8.0);
        m.regs_per_thread = 16 + (vw * 2) as u32;
        m
    }

    fn source(&self, config: &[i64]) -> String {
        format!(
            "#define BLOCK_SIZE {}\n#define ELEMENTS_PER_THREAD {}\n#define VECTOR_WIDTH {}\n\
             extern \"C\" __global__ void saxpy(int n, float a, const float* x, float* y);\n",
            config[0], config[1], config[2]
        )
    }
}

fn main() {
    // Bind the custom kernel to two GPUs from the testbed.
    for arch in [GpuArch::rtx_3060(), GpuArch::rtx_3090()] {
        let problem = GpuBenchmark::new(Arc::new(SaxpyKernel { n: 1 << 26 }), arch);
        println!(
            "\nsaxpy (n = 2^26) on {} — {} configs, {} valid",
            problem.platform(),
            problem.space().cardinality(),
            problem.space().count_valid_factored()
        );

        // Stock tuners work unchanged against the new benchmark.
        let evaluator = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(120);
        let run = SurrogateTuner::default().tune(&evaluator, 3);
        let best = run.best().expect("surrogate finds a valid config");
        println!(
            "    surrogate tuner best: {:.4} ms with block={}, ept={}, vw={}",
            best.time_ms().unwrap(),
            best.config[0],
            best.config[1],
            best.config[2]
        );

        // Effective bandwidth sanity check: SAXPY is a streaming kernel, so
        // the winner should run near the memory roofline.
        let bytes = 12.0 * (1u64 << 26) as f64;
        let gbs = bytes / (best.time_ms().unwrap() * 1e-3) / 1e9;
        println!("    effective bandwidth: {gbs:.0} GB/s");
    }
}
