//! Bayesian optimization of a GPU kernel, acquisition function by
//! acquisition function — the study of Willemsen et al. (the paper's
//! reference [22]) on the BAT suite.
//!
//! ```sh
//! cargo run --release --example bayesian_optimization
//! ```

use bat::prelude::*;

fn main() {
    // Convolution is one of the benchmarks where random search needs
    // hundreds of evaluations to pass 90% of optimal (paper Fig. 2d) —
    // exactly where model-based tuning is supposed to earn its keep.
    let arch = GpuArch::rtx_3090();
    let problem =
        bat::kernels::benchmark("convolution", arch).expect("convolution is in the registry");
    let budget = 150u64;
    let repeats = 5u64;

    // Ground truth from the exhaustive landscape (convolution is one of
    // the paper's four exhaustively-searched benchmarks).
    let landscape = Landscape::exhaustive(&problem);
    let t_opt = landscape.best().unwrap().time_ms.unwrap();
    println!(
        "convolution on {}: optimum {:.4} ms over {} configurations\n",
        problem.platform(),
        t_opt,
        landscape.samples.len()
    );

    // One GP-BO tuner per acquisition function, against the random
    // baseline.
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(BayesianOptimization::with_acquisition(
            Acquisition::ExpectedImprovement,
        )),
        Box::new(BayesianOptimization::with_acquisition(
            Acquisition::ProbabilityOfImprovement,
        )),
        Box::new(BayesianOptimization::with_acquisition(
            Acquisition::LowerConfidenceBound { beta: 2.0 },
        )),
        Box::new(RandomSearch),
    ];

    let comparison = compare_tuners(
        &problem,
        &tuners,
        &ComparisonSettings {
            budget,
            repeats,
            ..ComparisonSettings::default()
        },
        Some(t_opt),
    );

    println!(
        "budget {budget} evaluations, {repeats} repeats; median best-so-far (% of optimum):\n"
    );
    print!("{:<12}", "evals");
    for r in &comparison.results {
        print!(" {:>10}", r.tuner);
    }
    println!();
    for (c, &evals) in comparison.checkpoints.iter().enumerate() {
        print!("{evals:<12}");
        for r in &comparison.results {
            match r.median_curve[c] {
                Some(t) => print!(" {:>9.1}%", t_opt / t * 100.0),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }

    println!("\nfinal standings:\n{}", comparison.render_table());

    // The posterior itself is inspectable: fit a GP on a small sample and
    // show its honesty (high variance away from data).
    let space = problem.space();
    let sample: Vec<(Vec<f64>, f64)> = landscape
        .samples
        .iter()
        .step_by(landscape.samples.len() / 64)
        .filter_map(|s| {
            let t = s.time_ms?;
            let row: Vec<f64> = space.config_at(s.index).iter().map(|&v| v as f64).collect();
            Some((row, t.ln()))
        })
        .collect();
    let (rows, ys): (Vec<Vec<f64>>, Vec<f64>) = sample.into_iter().unzip();
    let gp = bat::ml::GaussianProcess::fit(&rows, &ys, &bat::ml::GpParams::default());
    println!(
        "GP fitted on {} observations: lengthscale {:.2}, noise {:.1e}, LML {:.1}",
        gp.n_observations(),
        gp.lengthscale(),
        gp.noise(),
        gp.log_marginal_likelihood()
    );
    let p = gp.predict(&rows[0]);
    println!(
        "at a training point: mean {:.3} (truth {:.3}), σ {:.3}",
        p.mean,
        ys[0],
        p.std_dev()
    );
}
