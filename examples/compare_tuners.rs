//! Compare all eleven optimization algorithms on one benchmark at equal
//! budget — the kind of study the BAT suite exists to make cheap.
//!
//! ```sh
//! cargo run --release --example compare_tuners
//! ```

use bat::prelude::*;
use bat::tuners::default_tuners;

fn main() {
    let arch = GpuArch::rtx_2080_ti();
    let problem = bat::kernels::benchmark("hotspot", arch).expect("hotspot is in the registry");
    let budget = 250u64;
    let repeats = 7u64;

    // Ground truth: sample the landscape hard to approximate the optimum.
    let landscape = bat::analysis::sampled_valid(&problem, 8_000, 0, 80_000_000)
        .expect("hotspot's valid space is easily sampled");
    let t_opt = landscape.best().unwrap().time_ms.unwrap();
    println!(
        "hotspot on {}: sampled optimum {:.4} ms over {} configs\n",
        problem.platform(),
        t_opt,
        landscape.samples.len()
    );

    println!(
        "{:<26} {:>14} {:>14} {:>10}",
        "tuner", "median (ms)", "best (ms)", "rel perf"
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for tuner in default_tuners() {
        let mut bests: Vec<f64> = Vec::new();
        for seed in 0..repeats {
            let evaluator =
                Evaluator::with_protocol(&problem, Protocol::default()).with_budget(budget);
            if let Some(best) = tuner.tune(&evaluator, seed).best() {
                bests.push(best.time_ms().unwrap());
            }
        }
        bests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = bests[bests.len() / 2];
        rows.push((tuner.name().to_string(), median, bests[0]));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, median, best) in rows {
        println!(
            "{name:<26} {median:>14.4} {best:>14.4} {:>9.1}%",
            t_opt / median * 100.0
        );
    }
}
